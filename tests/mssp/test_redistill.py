"""Squash-driven online re-distillation: triggering, hot swap, RT003.

The hot swap happens strictly between episodes, but under pipelined
backends in-flight tasks exist right up to the squash that precedes it —
the cross-runtime identity tests pin down that a mid-run master swap is
invisible to the bit-identity contract.
"""

import dataclasses

import pytest

from repro.analysis.checker import check_runtime_events
from repro.config import DistillConfig, MsspConfig
from repro.distill import Distiller
from repro.distill.adaptive import (
    deassertion_observations,
    fold_observations,
    suppressed_block_writes,
)
from repro.errors import MsspError
from repro.experiments import evaluate, prepare
from repro.machine.interpreter import run_to_halt
from repro.mssp import MsspEngine
from repro.mssp.redistill import Redistiller
from repro.mssp.runtime.events import Redistilled, TaskSquashed
from repro.profiling import profile_program
from repro.workloads import get_workload

from tests.workloads.test_suite import SMALL_SIZES


def adaptive_engine(name, threshold=2, **config_kwargs):
    instance = get_workload(name).instance(SMALL_SIZES[name])
    profile = profile_program(instance.train_programs[0])
    distillation = Distiller(DistillConfig()).distill(
        instance.program, profile
    )
    config = MsspConfig(redistill_threshold=threshold, **config_kwargs)
    engine = MsspEngine(instance.program, distillation, config)
    engine.enable_adaptation(profile)
    return instance, engine


class TestRedistiller:
    def test_threshold_required(self):
        instance = get_workload("compress").instance(SMALL_SIZES["compress"])
        profile = profile_program(instance.train_programs[0])
        distillation = Distiller(DistillConfig()).distill(
            instance.program, profile
        )
        engine = MsspEngine(instance.program, distillation, MsspConfig())
        with pytest.raises(MsspError):
            Redistiller(engine, profile)
        assert engine.enable_adaptation(profile) is None

    def test_only_live_in_squashes_accumulate(self):
        instance, engine = adaptive_engine("compress", threshold=3)
        redistiller = engine.redistiller

        def squash(reason, origin):
            from repro.mssp.trace import TaskAttemptRecord

            record = TaskAttemptRecord(
                tid=1, start_pc=origin, end_pc=None, n_instrs=1,
                master_instrs=1, committed=False,
                squash_reason=reason, origin_pc=origin,
            )
            engine.events.emit(TaskSquashed(
                tid=1, reason=reason, record=record, mismatched_regs=(3,)
            ))

        squash("fault", 7)
        squash("wrong-start-pc", 7)
        assert redistiller.hot_region() is None
        squash("register-live-in", 7)
        squash("memory-live-in", 7)
        squash("register-live-in", 9)
        assert redistiller.hot_region() is None  # 2 + 1 < threshold 3
        squash("register-live-in", 7)
        assert redistiller.hot_region() == 7
        assert redistiller.mismatched_regs == {3}
        redistiller.reset()
        assert redistiller.hot_region() is None
        engine.close()

    def test_mispredict_triggers_real_redistillation(self):
        instance, engine = adaptive_engine("mispredict")
        result = engine.run()
        assert result.counters.redistillations >= 1
        reference = run_to_halt(instance.program)
        assert result.final_state.diff(reference.state) == []
        baseline = MsspEngine(
            instance.program, engine._initial_distillation, MsspConfig()
        ).run()
        assert (
            result.counters.tasks_squashed
            < baseline.counters.tasks_squashed
        )
        engine.close()

    def test_run_twice_is_deterministic(self):
        """reset() restores the pristine profile: two runs of the same
        engine adapt identically."""
        _, engine = adaptive_engine("mispredict")
        first = engine.run()
        second = engine.run()
        assert first == second
        engine.close()


class TestHotSwapUnderInFlightTasks:
    @pytest.mark.parametrize("runtime", ("eager", "thread"))
    def test_identical_across_runtimes(self, runtime):
        prepared = prepare(
            get_workload("mispredict"), size=SMALL_SIZES["mispredict"]
        )
        eager = evaluate(
            prepared, mssp_config=MsspConfig().with_adaptation()
        )
        other = evaluate(
            prepared,
            mssp_config=dataclasses.replace(
                MsspConfig().with_adaptation(), runtime=runtime,
                parallel_chunk_tasks=3, max_inflight_tasks=8,
            ),
        )
        assert other.mssp == eager.mssp
        assert other.counters.redistillations >= 1

    @pytest.mark.parametrize("mem", ("dict", "flat"))
    @pytest.mark.parametrize("tier", ("decoded", "jit"))
    def test_identical_across_mem_and_tier(self, mem, tier):
        prepared = prepare(
            get_workload("mispredict"), size=SMALL_SIZES["mispredict"]
        )
        reference = evaluate(
            prepared, mssp_config=MsspConfig().with_adaptation()
        )
        row = evaluate(
            prepared,
            mssp_config=dataclasses.replace(
                MsspConfig().with_adaptation(),
                mem_backend=mem, exec_tier=tier,
            ),
        )
        assert row.mssp == reference.mssp


class TestAdaptiveFolding:
    def test_suppressed_block_writes_stop_at_terminator(self):
        program = get_workload("mispredict").instance(64).program
        # Every block's write set excludes r0 and is finite.
        for pc in range(len(program.code)):
            writes = suppressed_block_writes(program, pc)
            assert 0 not in writes

    def test_deassertion_requires_evidence_overlap(self):
        program = get_workload("hashlookup").instance(300).program
        sites = [(11, False)]
        assert deassertion_observations(
            program, sites, frozenset()
        ) == []

    def test_fold_flips_branch_bias(self):
        instance = get_workload("hashlookup").instance(300)
        profile = profile_program(instance.train_programs[0])
        branch_pc = next(iter(profile.branches))
        before = profile.branches[branch_pc]
        rare_taken = before.taken <= before.not_taken
        folded = fold_observations(profile, [], [(branch_pc, rare_taken)])
        after = folded.branches[branch_pc]
        dominant = max(before.taken, before.not_taken)
        rare = after.taken if rare_taken else after.not_taken
        assert rare >= dominant


class TestRT003:
    def redistilled(self, region, threshold=2):
        return Redistilled(
            region=region, misses=threshold, threshold=threshold,
            despecialized=1, deasserted=0, generation=1,
        )

    def squash(self, origin, reason="register-live-in", tid=1):
        from repro.mssp.trace import TaskAttemptRecord

        record = TaskAttemptRecord(
            tid=tid, start_pc=origin, end_pc=None, n_instrs=1,
            master_instrs=1, committed=False, squash_reason=reason,
            origin_pc=origin,
        )
        return TaskSquashed(tid=tid, reason=reason, record=record)

    def test_clean_stream_passes(self):
        events = [
            self.squash(7), self.squash(7), self.redistilled(7),
        ]
        report = check_runtime_events(events)
        assert not [f for f in report.findings if f.check_id == "RT003"]

    def test_unjustified_redistillation_flagged(self):
        events = [self.squash(7), self.redistilled(7)]
        report = check_runtime_events(events)
        assert [f for f in report.findings if f.check_id == "RT003"]

    def test_wrong_region_evidence_flagged(self):
        events = [
            self.squash(9), self.squash(9), self.redistilled(7),
        ]
        report = check_runtime_events(events)
        assert [f for f in report.findings if f.check_id == "RT003"]

    def test_non_live_in_reasons_do_not_count(self):
        events = [
            self.squash(7, reason="fault"),
            self.squash(7, reason="fault"),
            self.redistilled(7),
        ]
        report = check_runtime_events(events)
        assert [f for f in report.findings if f.check_id == "RT003"]

    def test_counts_reset_after_swap(self):
        events = [
            self.squash(7), self.squash(7), self.redistilled(7),
            self.redistilled(7),  # no fresh evidence since the swap
        ]
        report = check_runtime_events(events)
        assert [f for f in report.findings if f.check_id == "RT003"]

    def test_real_adaptive_run_passes_rt003(self):
        from repro.analysis.checker import check_runtime_execution

        instance = get_workload("mispredict").instance(
            SMALL_SIZES["mispredict"]
        )
        profile = profile_program(instance.train_programs[0])
        distillation = Distiller(DistillConfig()).distill(
            instance.program, profile
        )
        report = check_runtime_execution(
            instance.program, distillation, profile=profile
        )
        assert report.ok
