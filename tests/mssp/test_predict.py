"""Live-in value predictors: units, gating, and the bit-identity contract.

The headline contract under test: predictors may only *improve* live-in
accuracy, never change results.  With the master-miss-streak gate closed
(the master keeps predicting correctly) the predictor bank must be
completely invisible — ``MsspResult`` bit-identical to ``predictors=
"off"`` — and even a deliberately wrong confident prediction is caught
by verification and repaired by recovery, exactly like a master
misprediction.
"""

import dataclasses
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DistillConfig, MsspConfig
from repro.distill import Distiller
from repro.machine.interpreter import run_to_halt
from repro.mssp import MsspEngine
from repro.mssp.predict import CellPredictor, ValuePredictorBank
from repro.profiling import profile_program
from repro.workloads import get_workload

from tests.strategies import terminating_programs
from tests.workloads.test_suite import SMALL_SIZES

FAST_CONFIG = MsspConfig(
    max_task_instrs=2_000, max_master_instrs_per_task=2_000,
    max_total_instrs=5_000_000,
)


class TestCellPredictor:
    def test_last_value_needs_confidence(self):
        cell = CellPredictor()
        cell.train(7, master_wrong=False)
        assert cell.predict("last", confidence=2) is None
        cell.train(7, master_wrong=False)
        cell.train(7, master_wrong=False)
        assert cell.predict("last", confidence=2) == 7

    def test_stride_tracks_arithmetic_sequences(self):
        cell = CellPredictor()
        for value in (10, 13, 16, 19):
            cell.train(value, master_wrong=False)
        assert cell.predict("stride", confidence=2) == 22
        assert cell.predict("last", confidence=2) is None

    def test_context_recalls_repeating_patterns(self):
        cell = CellPredictor()
        for value in (1, 2, 3, 1, 2, 3, 1, 2):
            cell.train(value, master_wrong=False)
        # history (1, 2) has always been followed by 3
        assert cell.predict("context", confidence=2) == 3

    def test_auto_tournament_prefers_the_accurate_kind(self):
        cell = CellPredictor()
        for value in (5, 8, 11, 14, 17, 20):
            cell.train(value, master_wrong=False)
        assert cell.best_kind() == "stride"
        assert cell.predict("auto", confidence=2) == 23

    def test_master_streak_resets_on_correct_master(self):
        cell = CellPredictor()
        cell.train(1, master_wrong=True)
        cell.train(1, master_wrong=True)
        assert cell.master_streak == 2
        cell.train(1, master_wrong=False)
        assert cell.master_streak == 0
        assert cell.master_misses == 2


class TestBankGating:
    def make_bank(self, **kwargs):
        defaults = dict(kind="last", confidence=2, miss_gate=2)
        defaults.update(kwargs)
        return ValuePredictorBank(**defaults)

    def train(self, bank, anchor, reg, truth, wrong):
        cell = bank.cells.setdefault((anchor, reg), CellPredictor())
        cell.train(truth, master_wrong=wrong)

    def test_gate_closed_means_no_overrides(self):
        bank = self.make_bank()
        bank.retarget([10], None)
        for _ in range(5):
            self.train(bank, 10, 3, 42, wrong=False)
        bank.begin_episode()
        assert bank.predictions_for(10) is None

    def test_gate_opens_after_master_miss_streak(self):
        bank = self.make_bank()
        bank.retarget([10], None)
        for _ in range(3):
            self.train(bank, 10, 3, 42, wrong=True)
        bank.begin_episode()
        assert bank.predictions_for(10) == {3: 42}

    def test_observe_mode_never_overrides(self):
        bank = self.make_bank(kind="observe")
        bank.retarget([10], None)
        for _ in range(5):
            self.train(bank, 10, 3, 42, wrong=True)
        bank.begin_episode()
        assert bank.predictions_for(10) is None
        assert bank.stats_for(10)[3].master_misses == 5

    def test_retarget_drops_stale_anchors_and_resets_streaks(self):
        bank = self.make_bank()
        bank.retarget([10, 20], None)
        for _ in range(3):
            self.train(bank, 10, 3, 42, wrong=True)
            self.train(bank, 20, 4, 9, wrong=True)
        bank.retarget([20], None)
        assert (10, 3) not in bank.cells
        assert bank.cells[(20, 4)].master_streak == 0
        bank.begin_episode()
        assert bank.predictions_for(20) is None  # streak was reset

    def test_pickle_round_trip(self):
        bank = self.make_bank(kind="auto")
        bank.retarget([10], None)
        for value in (5, 8, 11, 14):
            self.train(bank, 10, 3, value, wrong=True)
        bank.begin_episode()
        clone = pickle.loads(pickle.dumps(bank))
        assert clone.predictions_for(10) == bank.predictions_for(10)
        assert clone.cells[(10, 3)].stride == 3
        assert [dataclasses.asdict(s) for s in clone.cell_stats()] == [
            dataclasses.asdict(s) for s in bank.cell_stats()
        ]


def run_pair(name, runtime):
    """(predictors off, predictors on) results for one workload."""
    from repro.experiments import evaluate, prepare

    prepared = prepare(get_workload(name), size=SMALL_SIZES[name])
    base = dataclasses.replace(MsspConfig(), runtime=runtime)
    off = evaluate(prepared, mssp_config=base)
    on = evaluate(
        prepared, mssp_config=dataclasses.replace(base, predictors="auto")
    )
    return off.mssp, on.mssp


class TestDifferential:
    """Predictors on vs off: bit-identical whenever the gate stays shut."""

    @pytest.mark.parametrize("name", sorted(SMALL_SIZES))
    def test_bit_identical_eager(self, name):
        off, on = run_pair(name, "eager")
        if name == "mispredict":
            # The adversarial workload is *why* the gate opens: the
            # predictor must strictly reduce squashes here, and both
            # runs stay SEQ-equivalent (evaluate checks it).
            assert on.counters.tasks_squashed < off.counters.tasks_squashed
            assert on.counters.predictor_hits > 0
            return
        assert on == off

    @pytest.mark.parametrize(
        "name", ("hashlookup", "fib_memo", "compress", "mispredict")
    )
    def test_bit_identical_thread(self, name):
        off_eager, on_eager = run_pair(name, "eager")
        off_thread, on_thread = run_pair(name, "thread")
        assert off_thread == off_eager
        assert on_thread == on_eager

    @given(terminating_programs(), st.sampled_from(
        ["last", "stride", "context", "auto"]
    ))
    @settings(max_examples=20, deadline=None)
    def test_random_programs_stay_equivalent(self, program, kind):
        """For arbitrary programs the gate may open or not — either way
        the final state must equal sequential execution."""
        profile = profile_program(program)
        distillation = Distiller(
            DistillConfig(target_task_size=8)
        ).distill(program, profile)
        config = dataclasses.replace(
            FAST_CONFIG, predictors=kind,
            predict_confidence=1, predict_miss_gate=1,
        )
        result = MsspEngine(program, distillation, config).run()
        reference = run_to_halt(
            program, max_steps=FAST_CONFIG.max_total_instrs
        )
        assert result.final_state.diff(reference.state) == []
        assert result.counters.total_instrs == reference.steps


class _WrongBank(ValuePredictorBank):
    """A bank whose every confident prediction is deliberately wrong."""

    def __init__(self, poison):
        super().__init__(kind="last", confidence=1, miss_gate=1)
        self.poison = poison

    def begin_episode(self):
        self._snapshot = dict(self.poison)


class TestForcedMispredict:
    def test_wrong_prediction_squashes_and_recovers(self, monkeypatch):
        """A confidently wrong predictor is exactly as harmless as a
        wrong master: verification squashes, recovery repairs."""
        name = "compress"
        instance = get_workload(name).instance(SMALL_SIZES[name])
        profile = profile_program(instance.train_programs[0])
        distillation = Distiller(DistillConfig()).distill(
            instance.program, profile
        )
        config = dataclasses.replace(MsspConfig(), predictors="last")
        engine = MsspEngine(instance.program, distillation, config)
        anchors = list(distillation.pc_map.anchors)
        poison = {anchor: {4: 0x7FF12345} for anchor in anchors}
        monkeypatch.setattr(
            engine, "_make_predictor", lambda: _WrongBank(poison)
        )
        result = engine.run()
        reference = run_to_halt(instance.program)
        assert result.final_state.diff(reference.state) == []
        assert result.counters.total_instrs == reference.steps
        clean = MsspEngine(
            instance.program, distillation, MsspConfig()
        ).run()
        assert result.counters.tasks_squashed > clean.counters.tasks_squashed
        assert result.counters.predictor_misses > 0
