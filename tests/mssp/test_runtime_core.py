"""Runtime-core tests: one pipeline, three executors, one event seam.

The tentpole invariant of :mod:`repro.mssp.runtime` is that the
executor backend (``MsspConfig.runtime`` ∈ eager/thread/process) is
*unobservable*: every backend drives the same
:class:`~repro.mssp.runtime.pipeline.TaskPipeline` and produces a
bit-identical :class:`~repro.mssp.engine.MsspResult`.  These tests hold
that over every workload, over hypothesis-generated programs, under
event-seam fault injection (forced squashes with successors in flight),
and under pool failure — plus the structural guarantees around the
seam itself: records are rebuilt from events (any subscriber can
reconstruct the exact stream) and pipelined backends release their
workers deterministically on close.
"""

import dataclasses
import multiprocessing
import threading
import time

import pytest
from hypothesis import given, settings

from repro.config import DistillConfig, MsspConfig
from repro.distill import Distiller
from repro.experiments.harness import prepare
from repro.mssp import MsspEngine
from repro.mssp.engine import create_engine, run_mssp
from repro.mssp.faults import corrupt_live_in
from repro.mssp.runtime.events import EventLog
from repro.mssp.runtime.executors import (
    InlineExecutor,
    ProcessExecutor,
    ThreadExecutor,
    resolve_runtime,
)
from repro.mssp.trace import TraceRecorder
from repro.profiling import profile_program
from repro.workloads import get_workload, workload_names

from tests.strategies import terminating_programs

#: Small chunks + a narrow window keep many chunk boundaries even at
#: test-sized workloads (mirrors test_parallel_runtime.PARALLEL_CONFIG).
THREAD_CONFIG = MsspConfig(
    runtime="thread", num_slaves=2, parallel_chunk_tasks=4,
    max_inflight_tasks=16,
)
PROCESS_CONFIG = dataclasses.replace(THREAD_CONFIG, runtime="process")
EAGER_CONFIG = dataclasses.replace(THREAD_CONFIG, runtime="eager")

FAST_THREAD_CONFIG = dataclasses.replace(
    THREAD_CONFIG, max_task_instrs=2_000, max_master_instrs_per_task=2_000,
    max_total_instrs=5_000_000,
)

_PREPARED = {}


def prepared(name):
    """Profile + distill one workload at test size, once per session."""
    if name not in _PREPARED:
        spec = get_workload(name)
        _PREPARED[name] = prepare(spec, size=max(4, spec.default_size // 8))
    return _PREPARED[name]


def assert_identical(reference, candidate):
    """The whole observable MsspResult must match, bit for bit."""
    assert candidate.records == reference.records
    assert candidate.counters == reference.counters
    assert candidate.device_trace == reference.device_trace
    assert candidate.halted == reference.halted
    assert candidate.final_state.pc == reference.final_state.pc
    assert candidate.final_state.diff(reference.final_state) == []


def run_backend(program, distillation, config, fault_tid=None):
    """One run under ``config.runtime``; returns (result, dispatch stats)."""
    with create_engine(program, distillation, config) as engine:
        if fault_tid is not None:
            engine.events.subscribe(corrupt_live_in(fault_tid))
        result = engine.run()
        return result, engine.dispatch_stats


class TestThreadDifferential:
    @pytest.mark.parametrize("name", workload_names())
    def test_thread_bit_identical_on_workload(self, name):
        ready = prepared(name)
        reference, _ = run_backend(
            ready.instance.program, ready.distillation, EAGER_CONFIG
        )
        candidate, stats = run_backend(
            ready.instance.program, ready.distillation, THREAD_CONFIG
        )
        assert_identical(reference, candidate)
        # A silently-degraded run (pool never started) would make this
        # test vacuous; require that chunks really crossed the pool.
        assert stats.dispatched > 0
        assert stats.adopted + stats.stale + stats.missing > 0


@pytest.mark.parallel
class TestThreeBackendDifferential:
    @pytest.mark.parametrize("name", ("fib_memo", "compress", "stringops"))
    def test_all_backends_identical_on_workload(self, name):
        """The strongest form of the tentpole invariant: all three
        executor substrates agree with one another on one run."""
        ready = prepared(name)
        program, distillation = ready.instance.program, ready.distillation
        reference, _ = run_backend(program, distillation, EAGER_CONFIG)
        for config in (THREAD_CONFIG, PROCESS_CONFIG):
            candidate, stats = run_backend(program, distillation, config)
            assert_identical(reference, candidate)
            assert stats.dispatched > 0


class TestThreadPropertyDifferential:
    @given(terminating_programs())
    @settings(max_examples=10, deadline=None)
    def test_any_program_bit_identical(self, program):
        profile = profile_program(program, max_steps=2_000_000)
        result = Distiller(DistillConfig(target_task_size=8)).distill(
            program, profile
        )
        distillation = (result.distilled, result.pc_map)
        reference, _ = run_backend(
            program, distillation,
            dataclasses.replace(FAST_THREAD_CONFIG, runtime="eager"),
        )
        candidate, _ = run_backend(program, distillation, FAST_THREAD_CONFIG)
        assert_identical(reference, candidate)


#: Tid at which the injected event-seam fault forces a live-in mismatch.
_CORRUPT_TID = 5


class TestForcedSquashPerBackend:
    @pytest.mark.parametrize(
        "config",
        [
            pytest.param(THREAD_CONFIG, id="thread"),
            pytest.param(
                PROCESS_CONFIG, id="process", marks=pytest.mark.parallel
            ),
        ],
    )
    def test_forced_squash_identical(self, config):
        """Satellite: a verification failure injected through the event
        seam while successors are in flight must discard them and leave
        records/counters identical to the eager engine under the same
        fault."""
        ready = prepared("fib_memo")
        program, distillation = ready.instance.program, ready.distillation
        reference, _ = run_backend(
            program, distillation, EAGER_CONFIG, fault_tid=_CORRUPT_TID
        )
        candidate, stats = run_backend(
            program, distillation, config, fault_tid=_CORRUPT_TID
        )
        assert_identical(reference, candidate)
        squashed = [
            r for r in reference.task_records
            if r.tid == _CORRUPT_TID and not r.committed
        ]
        assert squashed and squashed[0].squash_reason == "register-live-in"
        # The pipelined engine had produced/forked successors of task k;
        # the squash must have thrown them away unjudged.
        assert stats.discarded > 0
        assert any(r.tid > _CORRUPT_TID for r in reference.task_records)


class TestPoolDegradation:
    def test_broken_thread_pool_degrades_to_eager_results(self, monkeypatch):
        """A thread backend whose pool never comes up must fall back to
        local re-execution of every produced chunk — same results, one
        pool_degraded announcement."""

        def refuse(self):
            self.mark_broken("thread pool forced down (test)")
            return None

        monkeypatch.setattr(ThreadExecutor, "_ensure_pool", refuse)
        ready = prepared("stringops")
        reference, _ = run_backend(
            ready.instance.program, ready.distillation, EAGER_CONFIG
        )
        with create_engine(
            ready.instance.program, ready.distillation, THREAD_CONFIG
        ) as engine:
            log = EventLog()
            engine.events.subscribe(log)
            candidate = engine.run()
            stats = engine.dispatch_stats
        assert_identical(reference, candidate)
        assert stats.dispatched == 0
        assert stats.missing > 0 and stats.reexecuted == stats.missing
        degraded = [e for e in log.events if e.kind == "pool_degraded"]
        assert len(degraded) == 1 and degraded[0].executor == "thread"


class TestEventSeam:
    @pytest.mark.parametrize(
        "config",
        [
            pytest.param(EAGER_CONFIG, id="eager"),
            pytest.param(THREAD_CONFIG, id="thread"),
        ],
    )
    def test_records_rebuilt_from_subscription(self, config):
        """Satellite: an independently subscribed TraceRecorder must
        reconstruct ``MsspResult.records`` exactly — the records *are*
        a fold over the event stream, under every backend."""
        ready = prepared("fib_memo")
        with create_engine(
            ready.instance.program, ready.distillation, config
        ) as engine:
            recorder = TraceRecorder()
            log = EventLog()
            engine.events.subscribe(recorder)
            engine.events.subscribe(log)
            result = engine.run()
        assert recorder.records == result.records
        # Every judged task announced task_executed exactly once before
        # its verdict, on the pipelined backends too.
        executed = [e for e in log.events if e.kind == "task_executed"]
        assert len(executed) == len(result.task_records)
        assert any(e.kind == "task_forked" for e in log.events)

    def test_unsubscribe_stops_delivery(self):
        ready = prepared("fib_memo")
        with create_engine(
            ready.instance.program, ready.distillation, EAGER_CONFIG
        ) as engine:
            log = EventLog()
            unsubscribe = engine.events.subscribe(log)
            unsubscribe()
            engine.run()
        assert log.events == []


class TestRuntimeResolution:
    def test_resolve_runtime_names(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNTIME", raising=False)
        assert resolve_runtime(None) == "eager"
        assert resolve_runtime("eager") == "eager"
        assert resolve_runtime("thread") == "thread"
        assert resolve_runtime("process") == "process"
        assert resolve_runtime("parallel") == "process"  # deprecated alias
        with pytest.raises(ValueError):
            resolve_runtime("warp")

    def test_env_selects_backend_when_config_defers(self, monkeypatch):
        ready = prepared("fib_memo")
        monkeypatch.setenv("REPRO_RUNTIME", "thread")
        deferred = create_engine(
            ready.instance.program, ready.distillation, MsspConfig()
        )
        explicit = create_engine(
            ready.instance.program, ready.distillation, EAGER_CONFIG
        )
        assert deferred.runtime == "thread"
        assert explicit.runtime == "eager"  # explicit beats environment

    def test_backend_types_match_runtime(self):
        ready = prepared("fib_memo")
        for config, expected in (
            (EAGER_CONFIG, InlineExecutor),
            (THREAD_CONFIG, ThreadExecutor),
            (PROCESS_CONFIG, ProcessExecutor),
        ):
            engine = create_engine(
                ready.instance.program, ready.distillation, config
            )
            executor = engine._make_executor()
            try:
                assert type(executor) is expected
            finally:
                executor.close()

    def test_env_runtime_bit_identical(self, monkeypatch):
        ready = prepared("stringops")
        reference, _ = run_backend(
            ready.instance.program, ready.distillation, EAGER_CONFIG
        )
        monkeypatch.setenv("REPRO_RUNTIME", "thread")
        candidate = run_mssp(
            ready.instance.program, ready.distillation,
            dataclasses.replace(THREAD_CONFIG, runtime=None),
        )
        assert_identical(reference, candidate)


def _settle(done, timeout=5.0):
    """Poll ``done()`` until true or ``timeout`` seconds pass."""
    deadline = time.monotonic() + timeout
    while not done() and time.monotonic() < deadline:
        time.sleep(0.05)
    return done()


class TestPoolLifecycle:
    @pytest.mark.parallel
    def test_no_orphan_worker_processes(self):
        """Satellite: closing a process-backend engine must leave no
        live slave workers behind (deterministic lifecycle, not GC
        luck)."""
        baseline = set(multiprocessing.active_children())
        ready = prepared("fib_memo")
        run_mssp(ready.instance.program, ready.distillation, PROCESS_CONFIG)
        assert _settle(
            lambda: set(multiprocessing.active_children()) <= baseline
        ), "worker processes outlived engine close"

    def test_no_orphan_worker_threads(self):
        def slave_threads():
            return {
                t for t in threading.enumerate()
                if t.name.startswith("mssp-slave") and t.is_alive()
            }

        # Other engines in the test session (e.g. run with
        # REPRO_RUNTIME=thread as the default backend) may still hold
        # pools awaiting GC; only *this* run's threads must be gone.
        baseline = slave_threads()
        ready = prepared("fib_memo")
        run_mssp(ready.instance.program, ready.distillation, THREAD_CONFIG)
        assert _settle(lambda: slave_threads() <= baseline), (
            "slave threads outlived engine close"
        )

    def test_close_is_idempotent_and_engine_reusable(self):
        ready = prepared("fib_memo")
        reference, _ = run_backend(
            ready.instance.program, ready.distillation, EAGER_CONFIG
        )
        engine = create_engine(
            ready.instance.program, ready.distillation, THREAD_CONFIG
        )
        first = engine.run()
        engine.close()
        engine.close()  # idempotent
        second = engine.run()  # a fresh executor is built transparently
        engine.close()
        assert_identical(reference, first)
        assert_identical(reference, second)
