"""Differential tests: the parallel runtime against the eager reference.

The tentpole guarantee of :mod:`repro.mssp.parallel` is that pipelining
the master ahead of a process pool of slaves is *unobservable*: for any
program, any distillation (however corrupted), and any configuration,
:class:`ParallelMsspEngine` produces a bit-identical
:class:`~repro.mssp.engine.MsspResult` — same task records, counters,
device trace, and final architected state.  These tests enforce that
over every workload, over hypothesis-generated programs, under fault
injection (mid-flight squashes), and under pool failure (the degradation
paths must degrade to the eager result, not to a different one).
"""

import dataclasses
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DistillConfig, MsspConfig
from repro.distill import Distiller
from repro.experiments.harness import prepare
from repro.isa.asm import assemble
from repro.mssp import MsspEngine, ParallelMsspEngine
from repro.mssp import parallel as parallel_mod
from repro.mssp.faults import (
    corrupt_distilled,
    corrupt_live_in,
    random_garbage_master,
)
from repro.mssp.parallel import _ChainMemory, _execute_chunk, _WORKER_BASES
from repro.mssp.runtime.executors import ProcessExecutor
from repro.profiling import profile_program
from repro.workloads import get_workload, workload_names

from tests.strategies import terminating_programs

pytestmark = pytest.mark.parallel

#: Small chunks + a narrow window keep many chunk boundaries (the
#: interesting coordination points) even at test-sized workloads.
PARALLEL_CONFIG = MsspConfig(
    runtime="parallel", num_slaves=2, parallel_chunk_tasks=4,
    max_inflight_tasks=16,
)

#: Budgets small enough that adversarial masters (infinite loops etc.)
#: fail fast; mirrors test_properties.FAST_CONFIG.
FAST_PARALLEL_CONFIG = dataclasses.replace(
    PARALLEL_CONFIG, max_task_instrs=2_000, max_master_instrs_per_task=2_000,
    max_total_instrs=5_000_000,
)

_PREPARED = {}


def prepared(name):
    """Profile + distill one workload at test size, once per session."""
    if name not in _PREPARED:
        spec = get_workload(name)
        size = max(4, spec.default_size // 8)
        _PREPARED[name] = prepare(spec, size=size)
    return _PREPARED[name]


def assert_identical(eager, parallel):
    """The whole observable MsspResult must match, bit for bit."""
    assert parallel.records == eager.records
    assert parallel.counters == eager.counters
    assert parallel.device_trace == eager.device_trace
    assert parallel.halted == eager.halted
    assert parallel.final_state.pc == eager.final_state.pc
    assert parallel.final_state.diff(eager.final_state) == []


def run_differential(program, distillation, config, executor=None,
                     parallel_cls=ParallelMsspEngine, eager_cls=MsspEngine,
                     fault_tid=None):
    eager_engine = eager_cls(
        program, distillation, dataclasses.replace(config, runtime="eager")
    )
    if fault_tid is not None:
        eager_engine.events.subscribe(corrupt_live_in(fault_tid))
    eager_result = eager_engine.run()
    engine = parallel_cls(program, distillation, config, executor=executor)
    if fault_tid is not None:
        engine.events.subscribe(corrupt_live_in(fault_tid))
    try:
        parallel_result = engine.run()
    finally:
        engine.close()
    assert_identical(eager_result, parallel_result)
    return eager_result, parallel_result, engine.dispatch_stats


class TestWorkloadDifferential:
    @pytest.mark.parametrize("name", workload_names())
    def test_bit_identical_on_workload(self, name):
        ready = prepared(name)
        _, _, stats = run_differential(
            ready.instance.program, ready.distillation, PARALLEL_CONFIG
        )
        # A silently-degraded run (pool never started) would make this
        # test vacuous; require that tasks really crossed the pipe.
        assert stats.dispatched > 0
        assert stats.adopted + stats.stale + stats.missing > 0


@pytest.fixture(scope="module")
def shared_pool():
    """One executor shared by many engines (the ``executor=`` contract:
    the program ships with each chunk, nothing is preloaded, and the
    engine must never shut the pool down)."""
    pool = ProcessPoolExecutor(max_workers=2)
    yield pool
    pool.shutdown(wait=False, cancel_futures=True)


class TestPropertyDifferential:
    @given(terminating_programs())
    @settings(max_examples=12, deadline=None)
    def test_any_program_bit_identical(self, shared_pool, program):
        profile = profile_program(program, max_steps=2_000_000)
        result = Distiller(DistillConfig(target_task_size=8)).distill(
            program, profile
        )
        run_differential(
            program, (result.distilled, result.pc_map),
            FAST_PARALLEL_CONFIG, executor=shared_pool,
        )

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=8, deadline=None)
    def test_corrupted_distilled_bit_identical(self, shared_pool, seed):
        """Fault injection: valid-but-wrong masters squash mid-flight;
        the squash/cancel path must be as unobservable as the happy
        path."""
        ready = prepared("fib_memo")
        program = ready.instance.program
        corrupted = corrupt_distilled(
            ready.distillation.distilled, len(program.code), seed,
            severity=0.25,
        )
        run_differential(
            program, (corrupted, ready.distillation.pc_map),
            FAST_PARALLEL_CONFIG, executor=shared_pool,
        )

    @given(st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=8, deadline=None)
    def test_garbage_master_bit_identical(self, shared_pool, seed):
        ready = prepared("stringops")
        program = ready.instance.program
        garbage, pc_map = random_garbage_master(program, seed)
        run_differential(
            program, (garbage, pc_map), FAST_PARALLEL_CONFIG,
            executor=shared_pool,
        )


#: Tid at which the injected event-seam fault forces a live-in mismatch.
_CORRUPT_TID = 5


class TestSquashWhileInFlight:
    def test_forced_squash_discards_inflight_successors(self):
        """Satellite: inject a verification failure on task k (via the
        event seam's ``task_executed`` hook) and assert tasks k+1.. are
        discarded with identical records/counters under both runtimes."""
        ready = prepared("fib_memo")
        eager_result, _, stats = run_differential(
            ready.instance.program, ready.distillation, PARALLEL_CONFIG,
            fault_tid=_CORRUPT_TID,
        )
        squashed = [
            r for r in eager_result.task_records
            if r.tid == _CORRUPT_TID and not r.committed
        ]
        assert squashed and squashed[0].squash_reason == "register-live-in"
        # The parallel engine had already produced/forked successors of
        # task k; the squash must have thrown them away unjudged.
        assert stats.discarded > 0
        later = [
            r.tid for r in eager_result.task_records
            if r.tid > _CORRUPT_TID
        ]
        assert later, "the machine recovered and kept going past the squash"


IO_BASE = 0x8000
IO_REGIONS = ((IO_BASE, IO_BASE + 4),)

IO_PROGRAM = f"""
main:   li r1, 60
        li r4, 0
loop:   addi r1, r1, -1
        add r4, r4, r1
        andi r2, r1, 7
        bne r2, zero, skip       # every 8th iteration: device write
        sw r1, {IO_BASE + 1}(zero)
skip:   bne r1, zero, loop
        sw r4, 0x900(zero)
        lw r5, {IO_BASE}(zero)   # final device read
        sw r5, 0x901(zero)
        halt
"""


class TestDeviceTraceDifferential:
    def test_protected_regions_identical_device_trace(self):
        program = assemble(IO_PROGRAM)
        profile = profile_program(program)
        distillation = Distiller(DistillConfig(target_task_size=8)).distill(
            program, profile
        )
        config = dataclasses.replace(
            PARALLEL_CONFIG, protected_regions=IO_REGIONS,
            parallel_chunk_tasks=2,
        )
        eager_result, _, _ = run_differential(
            program, distillation, config
        )
        assert eager_result.device_trace, "the scenario must exercise I/O"


class _RefusingExecutor:
    """An executor whose submissions always fail (sandbox stand-in)."""

    def submit(self, fn, *args):
        raise OSError("subprocesses forbidden")


class TestPoolFailureFallback:
    def test_broken_executor_degrades_to_eager_results(self):
        ready = prepared("stringops")
        _, _, stats = run_differential(
            ready.instance.program, ready.distillation, PARALLEL_CONFIG,
            executor=_RefusingExecutor(),
        )
        assert stats.dispatched == 0
        assert stats.missing > 0 and stats.reexecuted == stats.missing

    def test_unstartable_pool_degrades_to_eager_results(self, monkeypatch):
        monkeypatch.setattr(
            ProcessExecutor, "_create_pool", lambda self: None
        )
        ready = prepared("stringops")
        _, _, stats = run_differential(
            ready.instance.program, ready.distillation, PARALLEL_CONFIG
        )
        assert stats.summary() == parallel_mod.DispatchStats().summary()


class _CapturingExecutor(ProcessExecutor):
    """Record every encoded chunk next to the tasks it encodes."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.captured = []

    def submit_chunk(self, batch):
        self.captured.append(
            (self._encode_chunk(batch),
             [dict(entry.task.checkpoint.mem) for entry in batch])
        )
        return super().submit_chunk(batch)


class _CapturingEngine(ParallelMsspEngine):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.captured = []

    def _make_executor(self):
        executor = _CapturingExecutor(
            self, self.events, external=self._external_executor
        )
        executor.captured = self.captured  # shared accumulator
        return executor


class TestWireEncoding:
    def test_delta_encoding_reconstructs_every_checkpoint(self):
        """``mem_k == mem_{k-1} | delta_k``: the worker-side reconstruction
        in :func:`_execute_chunk` must recover exactly the checkpoint
        memory the eager engine would have used."""
        ready = prepared("compress")
        engine = _CapturingEngine(
            ready.instance.program, ready.distillation, PARALLEL_CONFIG
        )
        with engine:
            engine.run()
        assert engine.captured
        saw_delta = False
        for payload, checkpoint_mems in engine.captured:
            wire_tasks = payload[6]
            previous = None
            for wire, expected in zip(wire_tasks, checkpoint_mems):
                _, _, _, _, _, mem_full, mem_delta = wire
                if mem_full is not None:
                    reconstructed = dict(mem_full)
                else:
                    saw_delta = True
                    reconstructed = {**previous, **mem_delta}
                assert reconstructed == expected
                previous = reconstructed
        assert saw_delta, "no chunk exercised the delta encoding"

    def test_chain_memory_zero_values(self):
        chain = _ChainMemory({5: 9, 6: 4})
        assert chain.load(5) == 9
        assert chain.load(7) == 0        # absent cells read as zero
        chain.apply({5: 0, 7: 3})
        assert chain.load(5) == 0        # overlay zero shadows the base
        assert chain.load(6) == 4
        assert chain.load(7) == 3

    def test_episode_base_zero_delta_deletes_boot_cell(self):
        ready = prepared("stringops")
        program = ready.instance.program
        boot_address = next(
            a for a, v in program.memory.items() if v != 0
        )
        _WORKER_BASES.clear()
        base = parallel_mod._episode_base(
            ("test", 0), {boot_address: 0, 1 << 30: 17}, program
        )
        try:
            assert base.get(boot_address, 0) == 0
            assert base[1 << 30] == 17
        finally:
            _WORKER_BASES.clear()
