"""Tests for protected (non-idempotent / memory-mapped I/O) regions.

The guarantee under test — the companion paper's named extension —
is *exactly-once, in-order* device access: speculative execution never
touches a protected cell, and the machine's observable I/O sequence is
identical to sequential execution's.
"""

import pytest
from hypothesis import given, settings

from repro.config import DistillConfig, MsspConfig
from repro.distill import Distiller
from repro.errors import MsspError, ProtectedAccessError
from repro.isa.asm import assemble
from repro.machine import run_to_halt
from repro.machine.state import ArchState
from repro.mssp import MsspEngine, SlaveView, Checkpoint
from repro.mssp.regions import ProtectedRegions, sequential_device_trace
from repro.mssp.slave import execute_task
from repro.mssp.task import SquashReason, Task
from repro.profiling import profile_program

from tests.strategies import terminating_programs

#: I/O: one "status register" at 0x8000 and a "data port" at 0x8001.
IO_BASE = 0x8000
REGIONS = ((IO_BASE, IO_BASE + 4),)

IO_PROGRAM = f"""
main:   li r1, 40
        li r4, 0
loop:   addi r1, r1, -1
        add r4, r4, r1
        andi r2, r1, 7
        bne r2, zero, skip       # every 8th iteration: device write
        sw r1, {IO_BASE + 1}(zero)
skip:   bne r1, zero, loop
        sw r4, 0x900(zero)
        lw r5, {IO_BASE}(zero)   # final device read
        sw r5, 0x901(zero)
        halt
"""


class TestProtectedRegions:
    def test_membership(self):
        regions = ProtectedRegions([(10, 20), (30, 31)])
        assert 10 in regions and 19 in regions and 30 in regions
        assert 9 not in regions and 20 not in regions and 31 not in regions
        assert len(regions) == 2

    def test_rejects_bad_ranges(self):
        with pytest.raises(MsspError):
            ProtectedRegions([(5, 5)])
        with pytest.raises(MsspError):
            ProtectedRegions([(10, 20), (15, 25)])

    def test_from_config(self):
        assert ProtectedRegions.from_config(None) is None
        assert ProtectedRegions.from_config(()) is None
        assert ProtectedRegions.from_config(((1, 2),)) is not None


class TestSlaveAborts:
    def test_view_raises_before_store(self):
        regions = ProtectedRegions(REGIONS)
        view = SlaveView(
            Checkpoint(regs=tuple([0] * 32)), ArchState(), pc=0,
            regions=regions,
        )
        with pytest.raises(ProtectedAccessError):
            view.store(IO_BASE, 1)
        assert view.live_out_mem() == {}  # nothing leaked

    def test_view_raises_before_load(self):
        regions = ProtectedRegions(REGIONS)
        view = SlaveView(
            Checkpoint(regs=tuple([0] * 32)), ArchState(), pc=0,
            regions=regions,
        )
        with pytest.raises(ProtectedAccessError):
            view.load(IO_BASE + 2)
        assert view.live_in_mem == {}

    def test_task_aborts_at_access(self):
        program = assemble(IO_PROGRAM)
        regions = ProtectedRegions(REGIONS)
        task = Task(
            tid=0, start_pc=0,
            checkpoint=Checkpoint.exact(ArchState(pc=0)), exact=True,
            end_pc=None,
        )
        execute_task(program, task, ArchState(pc=0), 10_000, regions=regions)
        assert task.protected_access
        # The aborting instruction is the device store, not executed.
        assert program.code[task.end_state_pc].is_store
        assert IO_BASE + 1 not in task.live_out_mem

    def test_verify_reports_protected(self):
        from repro.mssp.verify import verify_task

        program = assemble(IO_PROGRAM)
        regions = ProtectedRegions(REGIONS)
        arch = ArchState(pc=0)
        task = Task(
            tid=0, start_pc=0, checkpoint=Checkpoint.exact(arch), exact=True,
            end_pc=None,
        )
        execute_task(program, task, arch, 10_000, regions=regions)
        outcome = verify_task(task, arch)
        assert not outcome.ok
        assert outcome.reason is SquashReason.PROTECTED


def run_mssp_io(program, distillation=None):
    if distillation is None:
        profile = profile_program(program)
        distillation = Distiller(
            DistillConfig(target_task_size=20, min_branch_count=4)
        ).distill(program, profile)
    config = MsspConfig(protected_regions=REGIONS)
    return MsspEngine(program, distillation, config).run()


class TestExactlyOnce:
    def test_state_equivalence_with_io(self):
        program = assemble(IO_PROGRAM)
        result = run_mssp_io(program)
        reference = run_to_halt(program)
        assert result.final_state.diff(reference.state) == []

    def test_device_trace_matches_sequential(self):
        """The headline property: identical I/O sequences."""
        program = assemble(IO_PROGRAM)
        result = run_mssp_io(program)
        expected = sequential_device_trace(
            program, ProtectedRegions(REGIONS)
        )
        assert result.device_trace == expected
        # 5 stores (iterations 32, 24, 16, 8 and 0... the 0th happens at
        # r1 == 0 too) plus the final read.
        stores = [a for a in result.device_trace if a.is_store]
        loads = [a for a in result.device_trace if not a.is_store]
        assert len(stores) == 5
        assert len(loads) == 1
        assert result.counters.device_accesses == len(result.device_trace)

    def test_protected_squashes_recorded(self):
        program = assemble(IO_PROGRAM)
        result = run_mssp_io(program)
        assert result.counters.squash_reasons.get("protected-access", 0) > 0

    def test_no_device_trace_without_regions(self):
        program = assemble(IO_PROGRAM)
        profile = profile_program(program)
        distillation = Distiller(
            DistillConfig(target_task_size=20, min_branch_count=4)
        ).distill(program, profile)
        result = MsspEngine(program, distillation).run()
        assert result.device_trace == []

    @given(terminating_programs())
    @settings(max_examples=15, deadline=None)
    def test_random_programs_io_sequence_preserved(self, program):
        """Random programs with their data region marked as a device:
        MSSP's access sequence equals SEQ's, and state still matches."""
        regions_spec = ((0x100, 0x110),)  # half the strategy's data region
        profile = profile_program(program, max_steps=2_000_000)
        distillation = Distiller(DistillConfig(target_task_size=10)).distill(
            program, profile
        )
        config = MsspConfig(
            protected_regions=regions_spec,
            max_task_instrs=2_000, max_master_instrs_per_task=2_000,
        )
        result = MsspEngine(program, distillation, config).run()
        reference = run_to_halt(program, max_steps=2_000_000)
        assert result.final_state.diff(reference.state) == []
        expected = sequential_device_trace(
            program, ProtectedRegions(regions_spec), max_steps=2_000_000
        )
        assert result.device_trace == expected
