"""Unit tests for the verify/commit unit — the correctness keystone."""

from repro.isa.registers import NUM_REGS
from repro.machine.state import ArchState
from repro.mssp.task import Checkpoint, SquashReason, Task, TaskStatus
from repro.mssp.verify import (
    CellVersions,
    commit_task,
    squash_task,
    verify_task,
)


def completed_task(**overrides):
    task = Task(
        tid=0, start_pc=5,
        checkpoint=Checkpoint(regs=tuple([0] * NUM_REGS)),
        end_pc=9,
    )
    task.status = TaskStatus.COMPLETED
    task.end_state_pc = 9
    for name, value in overrides.items():
        setattr(task, name, value)
    return task


class TestVerify:
    def test_clean_task_passes(self):
        arch = ArchState(pc=5, mem={100: 7})
        arch.write_reg(1, 3)
        task = completed_task(
            live_in_regs={1: 3}, live_in_mem={100: 7}, n_instrs=4
        )
        outcome = verify_task(task, arch)
        assert outcome.ok
        assert outcome.reason is SquashReason.NONE
        assert outcome.checked == 3  # pc + 1 reg + 1 mem
        assert outcome.mismatched == 0

    def test_wrong_start_pc(self):
        arch = ArchState(pc=6)
        outcome = verify_task(completed_task(), arch)
        assert not outcome.ok
        assert outcome.reason is SquashReason.WRONG_START_PC

    def test_register_mismatch(self):
        arch = ArchState(pc=5)
        arch.write_reg(1, 99)
        outcome = verify_task(completed_task(live_in_regs={1: 3}), arch)
        assert not outcome.ok
        assert outcome.reason is SquashReason.REGISTER_LIVE_IN
        assert "r1" in outcome.detail

    def test_memory_mismatch(self):
        arch = ArchState(pc=5)
        outcome = verify_task(completed_task(live_in_mem={100: 7}), arch)
        assert not outcome.ok
        assert outcome.reason is SquashReason.MEMORY_LIVE_IN
        assert "mem[100]" in outcome.detail

    def test_all_mismatches_counted(self):
        arch = ArchState(pc=6)  # wrong pc too
        outcome = verify_task(
            completed_task(live_in_regs={1: 3, 2: 4}, live_in_mem={100: 7}),
            arch,
        )
        assert outcome.mismatched == 4
        assert outcome.checked == 4
        # First failure kind wins the reason field.
        assert outcome.reason is SquashReason.WRONG_START_PC

    def test_overrun_fails_before_any_value_check(self):
        arch = ArchState(pc=5)
        outcome = verify_task(completed_task(overrun=True), arch)
        assert not outcome.ok
        assert outcome.reason is SquashReason.OVERRUN

    def test_fault_fails(self):
        arch = ArchState(pc=5)
        outcome = verify_task(completed_task(faulted=True), arch)
        assert outcome.reason is SquashReason.FAULT

    def test_zero_live_in_value_matches_unmapped_memory(self):
        """Sparse memory: a recorded 0 live-in equals an absent cell."""
        arch = ArchState(pc=5)
        outcome = verify_task(completed_task(live_in_mem={4242: 0}), arch)
        assert outcome.ok


class TestCellVersions:
    def test_stamp_and_changed_since(self):
        versions = CellVersions()
        base = versions.seq
        assert not versions.changed_since(100, base)
        versions.stamp_commit([100, 200])
        assert versions.changed_since(100, base)
        assert versions.changed_since(200, base)
        assert not versions.changed_since(300, base)
        # A base taken after the commit sees nothing as changed.
        later = versions.seq
        assert not versions.changed_since(100, later)

    def test_invalidate_all_floors_every_cell(self):
        """Recovery writes memory without per-cell stamps; afterwards
        *every* address — stamped or never seen — must read changed
        relative to any pre-recovery base."""
        versions = CellVersions()
        versions.stamp_commit([100])
        base = versions.seq
        versions.invalidate_all()
        assert versions.changed_since(100, base)
        assert versions.changed_since(424242, base)  # never stamped
        fresh = versions.seq
        assert not versions.changed_since(100, fresh)
        assert not versions.changed_since(424242, fresh)

    def test_verify_outcome_identical_with_and_without_versions(self):
        """The fast path may only skip *comparisons*, never change the
        outcome or the checked count."""
        arch = ArchState(pc=5, mem={100: 7})
        versions = CellVersions()
        base = versions.seq
        plain = verify_task(
            completed_task(live_in_mem={100: 7, 4242: 0}), arch
        )
        fast = verify_task(
            completed_task(
                live_in_mem={100: 7, 4242: 0}, base_version=base
            ),
            arch, versions=versions,
        )
        assert (fast.ok, fast.reason, fast.checked, fast.mismatched) == (
            plain.ok, plain.reason, plain.checked, plain.mismatched
        )
        assert versions.skipped == 2  # both cells proved unchanged

    def test_changed_cells_are_still_compared(self):
        arch = ArchState(pc=5)  # mem[100] reads 0, not the recorded 7
        versions = CellVersions()
        base = versions.seq
        versions.stamp_commit([100])
        outcome = verify_task(
            completed_task(live_in_mem={100: 7}, base_version=base),
            arch, versions=versions,
        )
        assert not outcome.ok
        assert outcome.reason is SquashReason.MEMORY_LIVE_IN
        assert versions.skipped == 0

    def test_checkpoint_overlay_cells_never_skipped(self):
        """A cell the master's overlay predicted must always be compared:
        the architected value being unchanged says nothing about the
        overlay value the slave actually read."""
        arch = ArchState(pc=5)
        versions = CellVersions()
        task = completed_task(
            checkpoint=Checkpoint(
                regs=tuple([0] * NUM_REGS), mem={100: 7}
            ),
            live_in_mem={100: 7},  # read through the overlay, arch has 0
            base_version=versions.seq,
        )
        outcome = verify_task(task, arch, versions=versions)
        assert not outcome.ok
        assert outcome.reason is SquashReason.MEMORY_LIVE_IN
        assert versions.skipped == 0

    def test_no_base_version_disables_the_fast_path(self):
        arch = ArchState(pc=5, mem={100: 7})
        versions = CellVersions()
        outcome = verify_task(
            completed_task(live_in_mem={100: 7}), arch, versions=versions
        )
        assert outcome.ok
        assert versions.skipped == 0


class TestBatchedVerify:
    """Flat-backend batched verify vs the dict-backend per-cell loop.

    The batched pass (contiguous-run memoryview compares + page-stamp
    skips) must produce bit-identical outcomes; only the diagnostic
    ``CellVersions.skipped`` may differ.
    """

    MEM = {a: a * 3 + 1 for a in range(100, 140)}  # one contiguous run
    MEM.update({5000: 9, 5002: 11, -64: 4})  # plus scattered cells

    def both_outcomes(self, task_factory, versions_factory=lambda: None):
        outs = []
        for backend in ("dict", "flat"):
            arch = ArchState(pc=5, mem=dict(self.MEM), backend=backend)
            outs.append(
                verify_task(task_factory(), arch, versions=versions_factory())
            )
        return outs

    def test_clean_task_identical_across_backends(self):
        live = dict(self.MEM)
        dict_out, flat_out = self.both_outcomes(
            lambda: completed_task(live_in_mem=dict(live), n_instrs=4)
        )
        assert dict_out == flat_out
        assert flat_out.ok
        assert flat_out.checked == 1 + len(live)

    def test_mismatch_attribution_identical_across_backends(self):
        live = dict(self.MEM)
        live[120] += 1  # poison one cell mid-run
        live[5002] += 1
        dict_out, flat_out = self.both_outcomes(
            lambda: completed_task(live_in_mem=dict(live))
        )
        assert dict_out == flat_out
        assert not flat_out.ok
        assert flat_out.reason is SquashReason.MEMORY_LIVE_IN
        assert flat_out.mismatched == 2
        assert "mem[120]" in flat_out.detail  # dict-order first failure

    def test_zero_cells_and_absent_pages_match(self):
        live = {4242: 0, 4243: 0, 4244: 0}
        dict_out, flat_out = self.both_outcomes(
            lambda: completed_task(live_in_mem=dict(live))
        )
        assert dict_out == flat_out
        assert flat_out.ok

    def test_run_crossing_a_page_boundary(self):
        span = {a: 7 for a in range(510, 516)}  # crosses page 0 -> 1
        arch = ArchState(pc=5, mem=dict(span), backend="flat")
        outcome = verify_task(
            completed_task(live_in_mem=dict(span)), arch
        )
        assert outcome.ok
        assert outcome.checked == 1 + len(span)
        bad = dict(span)
        bad[512] = 8
        outcome = verify_task(
            completed_task(live_in_mem=bad),
            ArchState(pc=5, mem=dict(span), backend="flat"),
        )
        assert not outcome.ok
        assert "mem[512]" in outcome.detail

    def test_page_stamp_skip_proves_whole_runs(self):
        versions = CellVersions()
        base = versions.seq
        arch = ArchState(pc=5, mem=dict(self.MEM), backend="flat")
        outcome = verify_task(
            completed_task(live_in_mem=dict(self.MEM), base_version=base),
            arch, versions=versions,
        )
        assert outcome.ok
        assert versions.skipped == len(self.MEM)

    def test_page_stamp_is_conservative_not_wrong(self):
        """Stamping *any* cell of a page forces the value compare for
        the whole page — which still passes when values match, and
        still fails identically when they do not."""
        versions = CellVersions()
        base = versions.seq
        versions.stamp_commit([110])  # same page as the 100..139 run
        arch = ArchState(pc=5, mem=dict(self.MEM), backend="flat")
        outcome = verify_task(
            completed_task(live_in_mem=dict(self.MEM), base_version=base),
            arch, versions=versions,
        )
        assert outcome.ok
        # The scattered cells on other pages still skip; the stamped
        # page's run had to be compared.
        assert 0 < versions.skipped < len(self.MEM)

    def test_overlay_covered_run_is_compared_not_skipped(self):
        versions = CellVersions()
        base = versions.seq
        arch = ArchState(pc=5, backend="flat")  # arch reads 0 everywhere
        task = completed_task(
            checkpoint=Checkpoint(regs=tuple([0] * NUM_REGS), mem={100: 7}),
            live_in_mem={100: 7},  # slave read the overlay, arch has 0
            base_version=base,
        )
        outcome = verify_task(task, arch, versions=versions)
        assert not outcome.ok
        assert outcome.reason is SquashReason.MEMORY_LIVE_IN
        assert versions.skipped == 0

    def test_page_level_stamps_survive_invalidate_all(self):
        versions = CellVersions()
        versions.stamp_commit([100])
        base = versions.seq
        versions.invalidate_all()
        assert versions.page_changed_since(0, base)
        assert versions.page_changed_since(12345, base)
        fresh = versions.seq
        assert not versions.page_changed_since(0, fresh)


class TestCommitAndSquash:
    def test_commit_superimposes_and_jumps(self):
        arch = ArchState(pc=5, mem={100: 1, 200: 2})
        arch.write_reg(7, 7)
        task = completed_task(
            live_out_regs={1: 10}, live_out_mem={100: 11}, n_instrs=4
        )
        commit_task(task, arch)
        assert arch.pc == 9
        assert arch.read_reg(1) == 10
        assert arch.read_reg(7) == 7      # untouched cells survive
        assert arch.load(100) == 11
        assert arch.load(200) == 2
        assert task.status is TaskStatus.COMMITTED

    def test_commit_of_halted_task_lands_on_halt_pc(self):
        arch = ArchState(pc=5)
        task = completed_task(halted=True, end_state_pc=42, end_pc=None)
        commit_task(task, arch)
        assert arch.pc == 42

    def test_squash_leaves_arch_untouched(self):
        arch = ArchState(pc=5, mem={100: 1})
        snapshot = arch.copy()
        task = completed_task(live_out_regs={1: 10}, live_out_mem={100: 11})
        squash_task(task, SquashReason.REGISTER_LIVE_IN)
        assert arch == snapshot
        assert task.status is TaskStatus.SQUASHED
        assert task.squash_reason is SquashReason.REGISTER_LIVE_IN
