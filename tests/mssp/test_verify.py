"""Unit tests for the verify/commit unit — the correctness keystone."""

from repro.isa.registers import NUM_REGS
from repro.machine.state import ArchState
from repro.mssp.task import Checkpoint, SquashReason, Task, TaskStatus
from repro.mssp.verify import (
    CellVersions,
    commit_task,
    squash_task,
    verify_task,
)


def completed_task(**overrides):
    task = Task(
        tid=0, start_pc=5,
        checkpoint=Checkpoint(regs=tuple([0] * NUM_REGS)),
        end_pc=9,
    )
    task.status = TaskStatus.COMPLETED
    task.end_state_pc = 9
    for name, value in overrides.items():
        setattr(task, name, value)
    return task


class TestVerify:
    def test_clean_task_passes(self):
        arch = ArchState(pc=5, mem={100: 7})
        arch.write_reg(1, 3)
        task = completed_task(
            live_in_regs={1: 3}, live_in_mem={100: 7}, n_instrs=4
        )
        outcome = verify_task(task, arch)
        assert outcome.ok
        assert outcome.reason is SquashReason.NONE
        assert outcome.checked == 3  # pc + 1 reg + 1 mem
        assert outcome.mismatched == 0

    def test_wrong_start_pc(self):
        arch = ArchState(pc=6)
        outcome = verify_task(completed_task(), arch)
        assert not outcome.ok
        assert outcome.reason is SquashReason.WRONG_START_PC

    def test_register_mismatch(self):
        arch = ArchState(pc=5)
        arch.write_reg(1, 99)
        outcome = verify_task(completed_task(live_in_regs={1: 3}), arch)
        assert not outcome.ok
        assert outcome.reason is SquashReason.REGISTER_LIVE_IN
        assert "r1" in outcome.detail

    def test_memory_mismatch(self):
        arch = ArchState(pc=5)
        outcome = verify_task(completed_task(live_in_mem={100: 7}), arch)
        assert not outcome.ok
        assert outcome.reason is SquashReason.MEMORY_LIVE_IN
        assert "mem[100]" in outcome.detail

    def test_all_mismatches_counted(self):
        arch = ArchState(pc=6)  # wrong pc too
        outcome = verify_task(
            completed_task(live_in_regs={1: 3, 2: 4}, live_in_mem={100: 7}),
            arch,
        )
        assert outcome.mismatched == 4
        assert outcome.checked == 4
        # First failure kind wins the reason field.
        assert outcome.reason is SquashReason.WRONG_START_PC

    def test_overrun_fails_before_any_value_check(self):
        arch = ArchState(pc=5)
        outcome = verify_task(completed_task(overrun=True), arch)
        assert not outcome.ok
        assert outcome.reason is SquashReason.OVERRUN

    def test_fault_fails(self):
        arch = ArchState(pc=5)
        outcome = verify_task(completed_task(faulted=True), arch)
        assert outcome.reason is SquashReason.FAULT

    def test_zero_live_in_value_matches_unmapped_memory(self):
        """Sparse memory: a recorded 0 live-in equals an absent cell."""
        arch = ArchState(pc=5)
        outcome = verify_task(completed_task(live_in_mem={4242: 0}), arch)
        assert outcome.ok


class TestCellVersions:
    def test_stamp_and_changed_since(self):
        versions = CellVersions()
        base = versions.seq
        assert not versions.changed_since(100, base)
        versions.stamp_commit([100, 200])
        assert versions.changed_since(100, base)
        assert versions.changed_since(200, base)
        assert not versions.changed_since(300, base)
        # A base taken after the commit sees nothing as changed.
        later = versions.seq
        assert not versions.changed_since(100, later)

    def test_invalidate_all_floors_every_cell(self):
        """Recovery writes memory without per-cell stamps; afterwards
        *every* address — stamped or never seen — must read changed
        relative to any pre-recovery base."""
        versions = CellVersions()
        versions.stamp_commit([100])
        base = versions.seq
        versions.invalidate_all()
        assert versions.changed_since(100, base)
        assert versions.changed_since(424242, base)  # never stamped
        fresh = versions.seq
        assert not versions.changed_since(100, fresh)
        assert not versions.changed_since(424242, fresh)

    def test_verify_outcome_identical_with_and_without_versions(self):
        """The fast path may only skip *comparisons*, never change the
        outcome or the checked count."""
        arch = ArchState(pc=5, mem={100: 7})
        versions = CellVersions()
        base = versions.seq
        plain = verify_task(
            completed_task(live_in_mem={100: 7, 4242: 0}), arch
        )
        fast = verify_task(
            completed_task(
                live_in_mem={100: 7, 4242: 0}, base_version=base
            ),
            arch, versions=versions,
        )
        assert (fast.ok, fast.reason, fast.checked, fast.mismatched) == (
            plain.ok, plain.reason, plain.checked, plain.mismatched
        )
        assert versions.skipped == 2  # both cells proved unchanged

    def test_changed_cells_are_still_compared(self):
        arch = ArchState(pc=5)  # mem[100] reads 0, not the recorded 7
        versions = CellVersions()
        base = versions.seq
        versions.stamp_commit([100])
        outcome = verify_task(
            completed_task(live_in_mem={100: 7}, base_version=base),
            arch, versions=versions,
        )
        assert not outcome.ok
        assert outcome.reason is SquashReason.MEMORY_LIVE_IN
        assert versions.skipped == 0

    def test_checkpoint_overlay_cells_never_skipped(self):
        """A cell the master's overlay predicted must always be compared:
        the architected value being unchanged says nothing about the
        overlay value the slave actually read."""
        arch = ArchState(pc=5)
        versions = CellVersions()
        task = completed_task(
            checkpoint=Checkpoint(
                regs=tuple([0] * NUM_REGS), mem={100: 7}
            ),
            live_in_mem={100: 7},  # read through the overlay, arch has 0
            base_version=versions.seq,
        )
        outcome = verify_task(task, arch, versions=versions)
        assert not outcome.ok
        assert outcome.reason is SquashReason.MEMORY_LIVE_IN
        assert versions.skipped == 0

    def test_no_base_version_disables_the_fast_path(self):
        arch = ArchState(pc=5, mem={100: 7})
        versions = CellVersions()
        outcome = verify_task(
            completed_task(live_in_mem={100: 7}), arch, versions=versions
        )
        assert outcome.ok
        assert versions.skipped == 0


class TestCommitAndSquash:
    def test_commit_superimposes_and_jumps(self):
        arch = ArchState(pc=5, mem={100: 1, 200: 2})
        arch.write_reg(7, 7)
        task = completed_task(
            live_out_regs={1: 10}, live_out_mem={100: 11}, n_instrs=4
        )
        commit_task(task, arch)
        assert arch.pc == 9
        assert arch.read_reg(1) == 10
        assert arch.read_reg(7) == 7      # untouched cells survive
        assert arch.load(100) == 11
        assert arch.load(200) == 2
        assert task.status is TaskStatus.COMMITTED

    def test_commit_of_halted_task_lands_on_halt_pc(self):
        arch = ArchState(pc=5)
        task = completed_task(halted=True, end_state_pc=42, end_pc=None)
        commit_task(task, arch)
        assert arch.pc == 42

    def test_squash_leaves_arch_untouched(self):
        arch = ArchState(pc=5, mem={100: 1})
        snapshot = arch.copy()
        task = completed_task(live_out_regs={1: 10}, live_out_mem={100: 11})
        squash_task(task, SquashReason.REGISTER_LIVE_IN)
        assert arch == snapshot
        assert task.status is TaskStatus.SQUASHED
        assert task.squash_reason is SquashReason.REGISTER_LIVE_IN
