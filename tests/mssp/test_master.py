"""Unit tests for the master processor."""

import pytest

from repro.config import MsspConfig
from repro.isa.asm import assemble
from repro.machine.state import ArchState
from repro.mssp.master import Master, MasterEventKind

DISTILLED = assemble(
    """
    main:   li r1, 2
    loop:   fork 10
            addi r1, r1, -1
            sw r1, 200(zero)
            bne r1, zero, loop
            halt
    """
)


def started_master(config=None, arch=None, pc=0):
    master = Master(DISTILLED, config or MsspConfig())
    master.restart(arch or ArchState(), pc)
    return master


class TestEvents:
    def test_fork_event(self):
        master = started_master()
        event = master.run_until_fork()
        assert event.kind is MasterEventKind.FORK
        assert event.anchor == 10
        assert event.instrs == 2  # li + fork
        assert event.checkpoint.regs[1] == 2

    def test_fork_checkpoint_carries_dirty_memory(self):
        master = started_master()
        master.run_until_fork()  # first fork: nothing stored yet
        event = master.run_until_fork()
        assert event.kind is MasterEventKind.FORK
        assert event.checkpoint.mem == {200: 1}

    def test_halt_event(self):
        master = started_master()
        kinds = []
        while True:
            event = master.run_until_fork()
            kinds.append(event.kind)
            if event.kind is not MasterEventKind.FORK:
                break
        assert kinds == [
            MasterEventKind.FORK, MasterEventKind.FORK, MasterEventKind.HALT
        ]

    def test_trap_on_bad_pc(self):
        master = started_master(pc=999)
        event = master.run_until_fork()
        assert event.kind is MasterEventKind.TRAP

    def test_timeout_on_infinite_loop(self):
        looping = assemble("main: j main\nhalt")
        master = Master(looping, MsspConfig(max_master_instrs_per_task=50))
        master.restart(ArchState(), 0)
        event = master.run_until_fork()
        assert event.kind is MasterEventKind.TIMEOUT
        assert event.instrs == 50

    def test_requires_restart(self):
        master = Master(DISTILLED, MsspConfig())
        with pytest.raises(RuntimeError):
            master.run_until_fork()


class TestStateSeeding:
    def test_registers_seeded_from_arch(self):
        arch = ArchState()
        arch.write_reg(5, 77)
        program = assemble("fork 3\nhalt")
        master = Master(program, MsspConfig())
        master.restart(arch, 0)
        event = master.run_until_fork()
        assert event.checkpoint.regs[5] == 77

    def test_memory_reads_from_restart_snapshot(self):
        arch = ArchState(mem={100: 5})
        program = assemble("lw r1, 100(zero)\nfork 3\nhalt")
        master = Master(program, MsspConfig())
        master.restart(arch, 0)
        # Architected state changes after restart must not be visible:
        # the master runs ahead of commits by design.
        arch.store(100, 999)
        event = master.run_until_fork()
        assert event.checkpoint.regs[1] == 5

    def test_dirty_memory_reset_on_restart(self):
        arch = ArchState()
        master = started_master(arch=arch)
        master.run_until_fork()
        master.run_until_fork()  # has dirty mem now
        master.restart(arch, 0)
        event = master.run_until_fork()
        assert event.checkpoint.mem == {}

    def test_delta_mode_ships_only_recent_writes(self):
        arch = ArchState()
        master = Master(DISTILLED, MsspConfig(checkpoint_mode="delta"))
        master.restart(arch, 0)
        first = master.run_until_fork()
        assert first.checkpoint.mem == {}
        second = master.run_until_fork()
        assert second.checkpoint.mem == {200: 1}
        # The master's own view still sees all of its writes.
        third = master.run_until_fork()
        assert third.kind is MasterEventKind.HALT

    def test_cumulative_mode_ships_everything_since_restart(self):
        arch = ArchState()
        master = Master(DISTILLED, MsspConfig(checkpoint_mode="cumulative"))
        master.restart(arch, 0)
        master.run_until_fork()
        event = master.run_until_fork()
        assert event.checkpoint.mem == {200: 1}

    def test_counters(self):
        master = started_master()
        while master.run_until_fork().kind is MasterEventKind.FORK:
            pass
        assert master.restarts == 1
        # li fork | addi sw bne fork | addi sw bne -> 9 (halt not counted)
        assert master.total_instrs == 9
