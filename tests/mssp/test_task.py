"""Checkpoint snapshotting: isolation from later architected mutation."""

from repro.machine.state import ArchState
from repro.mssp.task import Checkpoint


class TestCheckpointSnapshot:
    def test_exact_checkpoint_is_independent_of_state(self):
        """A checkpoint must freeze the register file at capture time.

        The engine opens the restart task's checkpoint from live
        architected state and then keeps executing on that state; a
        checkpoint aliasing the register list would silently corrupt the
        task's live-in prediction.
        """
        arch = ArchState(pc=4)
        arch.write_reg(3, 77)
        checkpoint = Checkpoint.exact(arch)
        arch.write_reg(3, -1)
        arch.store(100, 5)
        assert checkpoint.regs[3] == 77
        assert checkpoint.mem == {}

    def test_checkpoint_mem_not_aliased(self):
        shipped = {10: 1}
        checkpoint = Checkpoint(regs=(0,) * 32, mem=shipped)
        shipped[10] = 2
        shipped[11] = 3
        # The master copies its dirty map before constructing the
        # checkpoint; this documents that Checkpoint itself stores what
        # it was given (the copy happens at the fork site).
        assert checkpoint.mem is shipped

    def test_len_counts_regs_plus_mem(self):
        checkpoint = Checkpoint(regs=(0,) * 32, mem={1: 2, 3: 4})
        assert len(checkpoint) == 34
