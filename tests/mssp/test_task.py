"""Checkpoint snapshotting: isolation from later architected mutation."""

import pickle

from repro.machine.state import ArchState
from repro.mssp.task import Checkpoint, SquashReason, Task, TaskStatus


class TestCheckpointSnapshot:
    def test_exact_checkpoint_is_independent_of_state(self):
        """A checkpoint must freeze the register file at capture time.

        The engine opens the restart task's checkpoint from live
        architected state and then keeps executing on that state; a
        checkpoint aliasing the register list would silently corrupt the
        task's live-in prediction.
        """
        arch = ArchState(pc=4)
        arch.write_reg(3, 77)
        checkpoint = Checkpoint.exact(arch)
        arch.write_reg(3, -1)
        arch.store(100, 5)
        assert checkpoint.regs[3] == 77
        assert checkpoint.mem == {}

    def test_checkpoint_mem_not_aliased(self):
        shipped = {10: 1}
        checkpoint = Checkpoint(regs=(0,) * 32, mem=shipped)
        shipped[10] = 2
        shipped[11] = 3
        # The master copies its dirty map before constructing the
        # checkpoint; this documents that Checkpoint itself stores what
        # it was given (the copy happens at the fork site).
        assert checkpoint.mem is shipped

    def test_len_counts_regs_plus_mem(self):
        checkpoint = Checkpoint(regs=(0,) * 32, mem={1: 2, 3: 4})
        assert len(checkpoint) == 34


class TestPickleRoundTrip:
    """Tasks cross process boundaries in the parallel runtime; every
    piece of the speculation state must survive pickling unchanged."""

    def test_checkpoint_round_trips(self):
        checkpoint = Checkpoint(regs=tuple(range(32)), mem={8: -3, 9: 0})
        clone = pickle.loads(pickle.dumps(checkpoint))
        assert clone == checkpoint
        assert clone.regs == checkpoint.regs
        assert clone.mem == checkpoint.mem

    def test_squash_reason_round_trips_to_same_member(self):
        for reason in SquashReason:
            assert pickle.loads(pickle.dumps(reason)) is reason

    def test_task_round_trips_with_execution_results(self):
        task = Task(
            tid=7, start_pc=12,
            checkpoint=Checkpoint(regs=(1,) * 32, mem={100: 5}),
            end_pc=40, end_arrivals=3, final=True,
            status=TaskStatus.COMPLETED,
        )
        task.live_in_regs = {2: 9}
        task.live_in_mem = {101: 0}
        task.live_out_regs = {3: -1}
        task.live_out_mem = {102: 7}
        task.n_instrs = 55
        task.n_loads = 4
        task.end_state_pc = 40
        task.halted = True
        task.squash_reason = SquashReason.MEMORY_LIVE_IN
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
        assert clone.status is TaskStatus.COMPLETED
        assert clone.squash_reason is SquashReason.MEMORY_LIVE_IN
        assert clone.checkpoint.mem == {100: 5}
