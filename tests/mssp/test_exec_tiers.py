"""Execution-tier differential tests: oracle / decoded / jit end to end.

The execution tier (``MsspConfig.exec_tier`` / ``REPRO_EXEC``) selects
how slaves and recovery step the original program — it must never select
*what* they compute.  These tests hold the whole observable
:class:`~repro.mssp.engine.MsspResult` bit-identical across tiers, under
both runtimes, through squashes injected while JIT-executed chunks are
in flight, and down at the :func:`~repro.mssp.slave.execute_task` level
where the superblock guards (arrival counting at leaders, non-leader
deopt, budget overrun) are easiest to corner.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DistillConfig, MsspConfig
from repro.distill import Distiller
from repro.experiments.harness import prepare
from repro.isa.asm import assemble
from repro.machine.decoded import decode
from repro.machine.jit import block_leaders
from repro.machine.state import ArchState
from repro.mssp import MsspEngine, ParallelMsspEngine
from repro.mssp.faults import corrupt_live_in
from repro.mssp.slave import execute_task
from repro.mssp.task import Checkpoint, Task
from repro.profiling import profile_program
from repro.workloads import get_workload, workload_names

from tests.strategies import terminating_programs

_PREPARED = {}


def prepared(name):
    if name not in _PREPARED:
        spec = get_workload(name)
        _PREPARED[name] = prepare(spec, size=max(4, spec.default_size // 8))
    return _PREPARED[name]


def assert_identical(reference, candidate):
    assert candidate.records == reference.records
    assert candidate.counters == reference.counters
    assert candidate.device_trace == reference.device_trace
    assert candidate.halted == reference.halted
    assert candidate.final_state.pc == reference.final_state.pc
    assert candidate.final_state.diff(reference.final_state) == []


def eager_result(program, distillation, tier=None, config=None):
    config = config or MsspConfig()
    if tier is not None:
        config = dataclasses.replace(config, exec_tier=tier)
    return MsspEngine(program, distillation, config).run()


class TestEagerTierDifferential:
    @pytest.mark.parametrize("name", workload_names())
    def test_jit_bit_identical_on_workload(self, name):
        ready = prepared(name)
        reference = eager_result(ready.instance.program, ready.distillation)
        jit = eager_result(
            ready.instance.program, ready.distillation, tier="jit"
        )
        assert_identical(reference, jit)

    @pytest.mark.parametrize("name", ("fib_memo", "compress"))
    def test_oracle_bit_identical_on_workload(self, name):
        ready = prepared(name)
        reference = eager_result(ready.instance.program, ready.distillation)
        oracle = eager_result(
            ready.instance.program, ready.distillation, tier="oracle"
        )
        assert_identical(reference, oracle)

    def test_verify_fast_path_is_exercised(self):
        """The version-stamped skip must actually fire on a real run —
        otherwise the tier differentials above prove nothing about it."""
        ready = prepared("fib_memo")
        engine = MsspEngine(
            ready.instance.program, ready.distillation, MsspConfig()
        )
        engine.run()
        assert engine._versions.skipped > 0

    def test_env_tier_matches_config_tier(self, monkeypatch):
        ready = prepared("stringops")
        explicit = eager_result(
            ready.instance.program, ready.distillation, tier="jit"
        )
        monkeypatch.setenv("REPRO_EXEC", "jit")
        via_env = eager_result(ready.instance.program, ready.distillation)
        assert_identical(explicit, via_env)

    def test_bad_exec_tier_rejected_at_config_time(self):
        with pytest.raises(ValueError):
            MsspConfig(exec_tier="warp")
        for tier in (None, "oracle", "decoded", "jit"):
            assert MsspConfig(exec_tier=tier).exec_tier == tier


#: Small tasks force many fork/verify/commit cycles even at test sizes.
FAST_DISTILL = DistillConfig(target_task_size=8)
FAST_CONFIG = MsspConfig(
    max_task_instrs=2_000, max_master_instrs_per_task=2_000,
    max_total_instrs=5_000_000,
)


class TestEagerTierProperty:
    @given(terminating_programs())
    @settings(max_examples=10, deadline=None)
    def test_any_program_bit_identical_across_tiers(self, program):
        profile = profile_program(program, max_steps=2_000_000)
        result = Distiller(FAST_DISTILL).distill(program, profile)
        distillation = (result.distilled, result.pc_map)
        reference = eager_result(program, distillation, config=FAST_CONFIG)
        for tier in ("oracle", "jit"):
            assert_identical(
                reference,
                eager_result(
                    program, distillation, tier=tier, config=FAST_CONFIG
                ),
            )


PARALLEL_JIT_CONFIG = MsspConfig(
    runtime="parallel", num_slaves=2, parallel_chunk_tasks=4,
    max_inflight_tasks=16, exec_tier="jit",
)


def run_parallel_differential(program, distillation, config,
                              parallel_cls=ParallelMsspEngine,
                              eager_cls=MsspEngine, fault_tid=None):
    """Parallel-with-tier vs eager-decoded: the strongest cross check
    (different runtime *and* different stepper must agree).  With
    ``fault_tid``, both engines get the same event-seam live-in
    sabotage subscribed (see :func:`repro.mssp.faults.corrupt_live_in`)."""
    reference_engine = eager_cls(
        program, distillation,
        dataclasses.replace(config, runtime="eager", exec_tier=None),
    )
    if fault_tid is not None:
        reference_engine.events.subscribe(corrupt_live_in(fault_tid))
    reference = reference_engine.run()
    engine = parallel_cls(program, distillation, config)
    if fault_tid is not None:
        engine.events.subscribe(corrupt_live_in(fault_tid))
    try:
        candidate = engine.run()
    finally:
        engine.close()
    assert_identical(reference, candidate)
    return engine.dispatch_stats


@pytest.mark.parallel
class TestParallelTierDifferential:
    @pytest.mark.parametrize("name", ("fib_memo", "compress", "stringops"))
    def test_jit_workers_bit_identical_on_workload(self, name):
        ready = prepared(name)
        stats = run_parallel_differential(
            ready.instance.program, ready.distillation, PARALLEL_JIT_CONFIG
        )
        # JIT-executed slave results must genuinely be adopted — a run
        # that degraded to local re-execution would prove nothing.
        assert stats.dispatched > 0
        assert stats.adopted > 0


#: Tid at which the injected fault forces a live-in mismatch.
_CORRUPT_TID = 5


@pytest.mark.parallel
class TestSquashDuringJitChunk:
    def test_forced_squash_bit_identical_under_jit(self):
        """Satellite: squash during a JIT-executed slave chunk.  The
        discarded in-flight work, the recovery walk (itself JIT-stepped),
        and everything after must match the eager decoded reference."""
        ready = prepared("fib_memo")
        stats = run_parallel_differential(
            ready.instance.program, ready.distillation, PARALLEL_JIT_CONFIG,
            fault_tid=_CORRUPT_TID,
        )
        assert stats.discarded > 0


HOT_TASK_PROGRAM = """
        .data
acc:    .word 0
        .text
main:   li r1, 48
        li r2, 0
loop:   add r2, r2, r1
        andi r3, r1, 3
        bne r3, r0, skip
        jal leaf
skip:   sw r2, acc(r0)
        lw r4, acc(r0)
        addi r1, r1, -1
        bne r1, r0, loop
        halt
leaf:   addi r2, r2, 7
        jr r31
"""


def run_task(program, tier, end_pc=None, end_arrivals=1, max_instrs=10_000):
    arch = ArchState.initial(program)
    task = Task(
        tid=0, start_pc=program.entry,
        checkpoint=Checkpoint(regs=tuple(arch.regs)),
        end_pc=end_pc, end_arrivals=end_arrivals,
    )
    execute_task(program, task, arch, max_instrs, tier=tier)
    return (
        task.live_in_regs, task.live_in_mem, task.live_out_regs,
        task.live_out_mem, task.n_instrs, task.n_loads, task.end_state_pc,
        task.halted, task.overrun, task.faulted,
    )


def visited_pcs(program):
    counts = {}

    def observer(pc, instr, effect, state):
        counts[pc] = counts.get(pc, 0) + 1

    decode(program).run(ArchState.initial(program), 1_000_000, observer)
    return counts


class TestExecuteTaskTiers:
    def test_leader_end_pc_with_arrival_counting(self):
        """JIT tasks ending at a hot leader must stop at exactly the
        k-th arrival, with identical recorded live-ins/live-outs."""
        program = assemble(HOT_TASK_PROGRAM)
        counts = visited_pcs(program)
        leaders = block_leaders(program)
        hot = [pc for pc, n in counts.items() if pc in leaders and n >= 4]
        assert hot, "fixture must revisit a leader"
        for end_pc in hot:
            for arrivals in (1, 2, 3):
                reference = run_task(
                    program, "decoded", end_pc=end_pc, end_arrivals=arrivals
                )
                for tier in ("oracle", "jit"):
                    assert run_task(
                        program, tier, end_pc=end_pc, end_arrivals=arrivals
                    ) == reference

    def test_non_leader_end_pc_deopts_identically(self):
        program = assemble(HOT_TASK_PROGRAM)
        counts = visited_pcs(program)
        leaders = block_leaders(program)
        mid_block = [pc for pc, n in counts.items()
                     if pc not in leaders and n >= 2]
        assert mid_block, "fixture must revisit a non-leader"
        for end_pc in mid_block[:3]:
            assert run_task(program, "jit", end_pc=end_pc) == run_task(
                program, "decoded", end_pc=end_pc
            )

    def test_budget_overrun_identical_inside_superblock(self):
        program = assemble(HOT_TASK_PROGRAM)
        total = run_task(program, "decoded")[4]
        for cut in (1, 2, 3, total // 3, total - 1):
            reference = run_task(program, "decoded", max_instrs=cut)
            assert reference[8], "cut must overrun"
            assert run_task(program, "jit", max_instrs=cut) == reference

    @given(terminating_programs(), st.sampled_from((5, 60, 10_000)))
    @settings(max_examples=15, deadline=None)
    def test_random_run_to_halt_tasks_identical(self, program, budget):
        reference = run_task(program, "decoded", max_instrs=budget)
        for tier in ("oracle", "jit"):
            assert run_task(program, tier, max_instrs=budget) == reference
