"""Memory-backend differential tests: dict / flat / check end to end.

The architected-memory backend (``MsspConfig.mem_backend`` /
``REPRO_MEM``) selects how architected state is *stored* — it must never
select what the machine computes.  The acceptance matrix holds the whole
observable :class:`~repro.mssp.engine.MsspResult` bit-identical on every
workload across mem {dict, flat} x exec tier {decoded, jit} x runtime
{eager, thread}, with squash/recovery traffic included, plus pickle
round-trips for flat-backed checkpointed state.
"""

import dataclasses
import pickle

import pytest

from repro.config import MsspConfig
from repro.experiments.harness import prepare
from repro.machine.flatmem import PagedMemory
from repro.machine.state import ArchState
from repro.mssp import MsspEngine, ParallelMsspEngine
from repro.mssp.faults import corrupt_live_in
from repro.mssp.master import Master
from repro.workloads import get_workload, workload_names

_PREPARED = {}


def prepared(name):
    if name not in _PREPARED:
        spec = get_workload(name)
        _PREPARED[name] = prepare(spec, size=max(4, spec.default_size // 8))
    return _PREPARED[name]


def assert_identical(reference, candidate):
    assert candidate.records == reference.records
    assert candidate.counters == reference.counters
    assert candidate.device_trace == reference.device_trace
    assert candidate.halted == reference.halted
    assert candidate.final_state.pc == reference.final_state.pc
    assert candidate.final_state.diff(reference.final_state) == []


def run_combo(ready, mem, tier, runtime):
    config = MsspConfig(
        mem_backend=mem, exec_tier=tier, runtime=runtime, num_slaves=2
    )
    cls = MsspEngine if runtime == "eager" else ParallelMsspEngine
    engine = cls(ready.instance.program, ready.distillation, config)
    try:
        return engine.run()
    finally:
        engine.close()


class TestBackendMatrix:
    """mem x tier x runtime: all eight combos agree, per workload."""

    @pytest.mark.parametrize("name", workload_names())
    def test_full_matrix_bit_identical(self, name):
        ready = prepared(name)
        reference = run_combo(ready, "dict", "decoded", "eager")
        for mem in ("dict", "flat"):
            for tier in ("decoded", "jit"):
                for runtime in ("eager", "thread"):
                    if (mem, tier, runtime) == ("dict", "decoded", "eager"):
                        continue
                    candidate = run_combo(ready, mem, tier, runtime)
                    assert_identical(reference, candidate)

    def test_check_backend_runs_lockstep_clean(self):
        """The differential oracle backend: dict and flat in lockstep,
        raising on divergence — a clean run proves the flat store
        tracked the dict bit for bit through forks/squashes/commits."""
        ready = prepared("fib_memo")
        reference = run_combo(ready, "dict", "decoded", "eager")
        candidate = run_combo(ready, "check", "jit", "eager")
        assert_identical(reference, candidate)


class TestSquashWithFlatBackend:
    def test_forced_squash_identical_across_backends(self, monkeypatch):
        """Squash + recovery write architected state through the
        non-speculative path (and bulk-invalidate the verify stamps);
        the flat backend must come out bit-identical — with the squash
        landing in a run whose jit-tier master executes generated code
        (captured masters prove both the restart and the coverage)."""
        captured = []

        class CapturingMaster(Master):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                captured.append(self)

        monkeypatch.setattr("repro.mssp.engine.Master", CapturingMaster)
        ready = prepared("fib_memo")
        results = []
        for mem in ("dict", "flat"):
            engine = MsspEngine(
                ready.instance.program, ready.distillation,
                MsspConfig(mem_backend=mem, exec_tier="jit"),
            )
            engine.events.subscribe(corrupt_live_in(3))
            results.append(engine.run())
        reference, flat = results
        assert reference.counters.tasks_squashed > 0
        assert_identical(reference, flat)
        for master in captured:
            assert master.jit_instrs > 0  # generated code really ran
            assert master.restarts > 1    # ... and the squash reseeded it


class TestFlatStatePickling:
    def test_final_state_round_trips(self):
        ready = prepared("compress")
        result = run_combo(ready, "flat", "jit", "eager")
        state = result.final_state
        clone = pickle.loads(pickle.dumps(state))
        assert clone == state
        assert clone.diff(state) == []

    def test_flat_arch_state_round_trips_through_checkpointing(self):
        """A flat-backed state survives pickling with its paged store
        intact (the process runtime ships checkpoints by value)."""
        program = prepared("compress").instance.program
        state = ArchState.initial(program, backend="flat")
        assert isinstance(state.mem, PagedMemory)
        state.store(12345, 77)
        state.store(-600, -9)
        clone = pickle.loads(pickle.dumps(state))
        assert isinstance(clone.mem, PagedMemory)
        assert clone == state
        clone.store(12345, 1)  # independence
        assert state.load(12345) == 77

    def test_config_round_trips_mem_backend(self):
        config = MsspConfig(mem_backend="flat")
        assert pickle.loads(pickle.dumps(config)) == config
        assert dataclasses.replace(config).mem_backend == "flat"
