"""Unit tests for slave-side task execution and live-in/out recording."""

from repro.isa.asm import assemble
from repro.isa.registers import NUM_REGS
from repro.machine.state import ArchState
from repro.mssp.slave import SlaveView, execute_task
from repro.mssp.task import Checkpoint, Task, TaskStatus


def ckpt(regs=None, mem=None):
    values = [0] * NUM_REGS
    for index, value in (regs or {}).items():
        values[index] = value
    return Checkpoint(regs=tuple(values), mem=dict(mem or {}))


def make_task(start_pc, checkpoint=None, end_pc=None, tid=0):
    return Task(
        tid=tid, start_pc=start_pc,
        checkpoint=checkpoint or ckpt(), end_pc=end_pc,
    )


class TestSlaveViewRegisters:
    def test_read_before_write_records_live_in(self):
        view = SlaveView(ckpt({3: 7}), ArchState(), pc=0)
        assert view.read_reg(3) == 7
        assert view.live_in_regs == {3: 7}

    def test_write_then_read_records_nothing(self):
        view = SlaveView(ckpt({3: 7}), ArchState(), pc=0)
        view.write_reg(3, 9)
        assert view.read_reg(3) == 9
        assert view.live_in_regs == {}

    def test_r0_reads_zero_even_if_checkpoint_corrupted(self):
        view = SlaveView(ckpt({0: 999}), ArchState(), pc=0)
        assert view.read_reg(0) == 0
        assert view.live_in_regs == {}

    def test_live_in_recorded_once(self):
        view = SlaveView(ckpt({3: 7}), ArchState(), pc=0)
        view.read_reg(3)
        view.read_reg(3)
        assert view.live_in_regs == {3: 7}

    def test_live_out_regs_only_written(self):
        view = SlaveView(ckpt({3: 7}), ArchState(), pc=0)
        view.write_reg(4, 1)
        view.write_reg(5, 2)
        view.write_reg(0, 3)  # discarded
        assert view.live_out_regs() == {4: 1, 5: 2}


class TestSlaveViewMemory:
    def test_lookup_priority_own_then_ckpt_then_arch(self):
        arch = ArchState(mem={10: 1, 20: 2, 30: 3})
        view = SlaveView(ckpt(mem={20: 22, 30: 33}), arch, pc=0)
        view.store(30, 333)
        assert view.load(30) == 333  # own write wins
        assert view.load(20) == 22   # checkpoint beats architected
        assert view.load(10) == 1    # architected fallback

    def test_live_in_mem_records_first_read_value(self):
        arch = ArchState(mem={10: 1})
        view = SlaveView(ckpt(mem={20: 22}), arch, pc=0)
        view.load(10)
        view.load(20)
        view.store(40, 4)
        view.load(40)  # own store: not a live-in
        assert view.live_in_mem == {10: 1, 20: 22}

    def test_live_in_value_sticky(self):
        """The *first* observed value is what verification checks."""
        arch = ArchState(mem={10: 1})
        view = SlaveView(ckpt(), arch, pc=0)
        assert view.load(10) == 1
        arch.store(10, 99)  # should never happen mid-task, but be safe
        assert view.load(10) == 1
        assert view.live_in_mem == {10: 1}

    def test_arch_never_written(self):
        arch = ArchState()
        view = SlaveView(ckpt(), arch, pc=0)
        view.store(5, 50)
        assert arch.load(5) == 0
        assert view.live_out_mem() == {5: 50}


class TestExecuteTask:
    PROGRAM = assemble(
        """
        main:   li r1, 3
        loop:   addi r1, r1, -1
                add r2, r2, r1
                bne r1, zero, loop
                sw r2, 100(zero)
                halt
        """
    )

    def test_runs_to_end_pc(self):
        arch = ArchState(pc=0)
        task = make_task(0, end_pc=4)
        execute_task(self.PROGRAM, task, arch, max_instrs=100)
        assert task.status is TaskStatus.COMPLETED
        assert task.end_state_pc == 4
        assert not task.overrun and not task.faulted and not task.halted
        assert task.n_instrs == 10  # li + 3 * (addi, add, bne)

    def test_runs_to_halt_when_final(self):
        arch = ArchState(pc=0)
        task = make_task(0, end_pc=None)
        execute_task(self.PROGRAM, task, arch, max_instrs=100)
        assert task.halted
        assert task.end_state_pc == 5
        assert task.live_out_mem == {100: 3}

    def test_start_equals_end_runs_full_iteration(self):
        """A self-anchor task executes one whole loop trip, not zero steps."""
        arch = ArchState(pc=1)
        task = make_task(1, checkpoint=ckpt({1: 3}), end_pc=1)
        execute_task(self.PROGRAM, task, arch, max_instrs=100)
        assert task.n_instrs == 3  # addi, add, bne (taken)
        assert task.end_state_pc == 1

    def test_overrun_detected(self):
        arch = ArchState(pc=1)
        # r1 large: cannot finish within budget.
        task = make_task(1, checkpoint=ckpt({1: 10_000}), end_pc=4)
        execute_task(self.PROGRAM, task, arch, max_instrs=50)
        assert task.overrun
        assert task.n_instrs == 50

    def test_fault_detected(self):
        program = assemble("jr r5\nhalt")
        arch = ArchState(pc=0)
        task = make_task(0, checkpoint=ckpt({5: 12_345}), end_pc=None)
        execute_task(program, task, arch, max_instrs=50)
        assert task.faulted
        assert not task.overrun

    def test_live_ins_reflect_checkpoint_values(self):
        arch = ArchState(pc=1)
        task = make_task(1, checkpoint=ckpt({1: 2, 2: 10}), end_pc=4)
        execute_task(self.PROGRAM, task, arch, max_instrs=100)
        assert task.live_in_regs == {1: 2, 2: 10}
        assert task.live_out_regs[1] == 0
        assert task.live_out_regs[2] == 11  # 10 + 1 + 0

    def test_live_in_count_includes_pc(self):
        arch = ArchState(pc=0)
        task = make_task(0, end_pc=4)
        execute_task(self.PROGRAM, task, arch, max_instrs=100)
        assert task.live_in_count == len(task.live_in_regs) + len(
            task.live_in_mem
        ) + 1
