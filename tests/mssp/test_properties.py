"""Property-based tests of MSSP's headline guarantee.

The claim under test (the MICRO paper's thesis, formalized by the
companion paper): **nothing the fast path does can affect correctness**.
For any original program, any distillation configuration, any training
input, and even adversarially corrupted or entirely random distilled
programs and pc maps, MSSP's final architected state equals sequential
execution of the original program — and the trace is a jumping
refinement of SEQ.
"""

import dataclasses
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DistillConfig, MsspConfig
from repro.distill import Distiller
from repro.distill.pc_map import PcMap
from repro.formal.refinement import assert_jumping_refinement, replay_trace
from repro.isa.program import Program
from repro.machine.interpreter import run_to_halt
from repro.mssp import MsspEngine
from repro.mssp.faults import corrupt_distilled, random_garbage_master
from repro.profiling import profile_program

from tests.strategies import terminating_programs

#: Small budgets keep adversarial cases (looping masters etc.) fast.
FAST_CONFIG = MsspConfig(
    max_task_instrs=2_000, max_master_instrs_per_task=2_000,
    max_total_instrs=5_000_000,
)

DISTILL_CONFIGS = [
    DistillConfig(target_task_size=8),
    DistillConfig(
        target_task_size=20, branch_bias_threshold=0.9, min_branch_count=2,
        value_spec_min_count=2,
    ),
    DistillConfig(
        target_task_size=50, branch_bias_threshold=0.99,
        cold_threshold=0.01, value_spec_min_count=4,
    ),
    DistillConfig(target_task_size=10).without_pass("dce"),
    DistillConfig(target_task_size=10).without_pass("branch_removal"),
]


def check_equivalence(program: Program, distilled, pc_map, config=FAST_CONFIG):
    engine = MsspEngine(program, (distilled, pc_map), config)
    result = engine.run()
    reference = run_to_halt(program, max_steps=config.max_total_instrs)
    assert result.final_state.diff(reference.state) == [], (
        result.final_state.diff(reference.state)
    )
    assert result.counters.total_instrs == reference.steps
    assert_jumping_refinement(program, result)
    return result


class TestRealDistillerEquivalence:
    @given(terminating_programs(), st.sampled_from(DISTILL_CONFIGS))
    @settings(max_examples=30, deadline=None)
    def test_equivalent_for_any_program_and_config(self, program, config):
        profile = profile_program(program, max_steps=2_000_000)
        result = Distiller(config).distill(program, profile)
        check_equivalence(program, result.distilled, result.pc_map)

    @given(terminating_programs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_equivalent_under_training_input_mismatch(self, program, seed):
        """Profile on one data image, evaluate on a perturbed one."""
        profile = profile_program(program, max_steps=2_000_000)
        result = Distiller(DISTILL_CONFIGS[1]).distill(program, profile)
        rng = random.Random(seed)
        perturbed_data = {
            address: rng.randint(-100, 100)
            for address in range(0x100, 0x100 + 8)
        }
        evaluated = program.updated_memory(perturbed_data)
        check_equivalence(evaluated, result.distilled, result.pc_map)


class TestAdversarialMasters:
    @given(terminating_programs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_corrupted_distilled_cannot_break_correctness(self, program, seed):
        profile = profile_program(program, max_steps=2_000_000)
        result = Distiller(DistillConfig(target_task_size=10)).distill(
            program, profile
        )
        corrupted = corrupt_distilled(
            result.distilled, len(program.code), seed, severity=0.2
        )
        check_equivalence(program, corrupted, result.pc_map)

    @given(terminating_programs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=25, deadline=None)
    def test_random_garbage_master_cannot_break_correctness(self, program, seed):
        garbage, pc_map = random_garbage_master(program, seed)
        check_equivalence(program, garbage, pc_map)

    @given(terminating_programs(), st.sampled_from(DISTILL_CONFIGS))
    @settings(max_examples=15, deadline=None)
    def test_delta_checkpoints_equivalent(self, program, config):
        """Delta checkpoint shipping changes bandwidth, never results."""
        profile = profile_program(program, max_steps=2_000_000)
        result = Distiller(config).distill(program, profile)
        delta_config = dataclasses.replace(
            FAST_CONFIG, checkpoint_mode="delta"
        )
        check_equivalence(
            program, result.distilled, result.pc_map, config=delta_config
        )

    @given(terminating_programs(), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=15, deadline=None)
    def test_throttled_engine_is_still_equivalent(self, program, seed):
        """Dual-mode throttling changes the execution plan, never results."""
        garbage, pc_map = random_garbage_master(program, seed)
        config = dataclasses.replace(
            FAST_CONFIG, throttle_threshold=0.5, throttle_window=4,
            throttle_chunk=50,
        )
        check_equivalence(program, garbage, pc_map, config=config)


class TestRefinementReplay:
    @given(terminating_programs())
    @settings(max_examples=15, deadline=None)
    def test_replay_reports_jump_totals(self, program):
        profile = profile_program(program, max_steps=2_000_000)
        result = Distiller(DistillConfig(target_task_size=10)).distill(
            program, profile
        )
        outcome = MsspEngine(program, result, FAST_CONFIG).run()
        report = replay_trace(program, outcome)
        assert report.ok, report.issues
        assert report.jumped_instrs == outcome.counters.committed_instrs
        assert report.jumps == outcome.counters.tasks_committed
