"""Tests for table rendering and summary statistics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import Table, geomean, mean


class TestGeomean:
    def test_basic(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([1.0, -2.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1))
    def test_bounded_by_min_max(self, values):
        result = geomean(values)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(
        st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_scale_equivariance(self, values, factor):
        scaled = geomean([v * factor for v in values])
        assert scaled == pytest.approx(geomean(values) * factor, rel=1e-6)

    @given(st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1))
    def test_never_exceeds_arithmetic_mean(self, values):
        assert geomean(values) <= mean(values) + 1e-9


class TestMean:
    def test_basic(self):
        assert mean([1, 2, 3]) == 2.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            mean([])


class TestTable:
    def test_renders_header_and_rows(self):
        table = Table(["a", "bee"], title="demo")
        table.add_row(1, 2.5).add_row("x", 3)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "bee" in lines[1]
        assert "2.500" in text  # default float format
        assert "x" in text

    def test_column_alignment(self):
        table = Table(["name", "value"])
        table.add_row("longest-name-here", 1)
        table.add_row("short", 22)
        lines = table.render().splitlines()
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equal width

    def test_wrong_cell_count_rejected(self):
        table = Table(["only"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_custom_float_format(self):
        table = Table(["v"], float_format="{:.1f}")
        table.add_row(3.14159)
        assert "3.1" in table.render()
        assert "3.14" not in table.render()

    def test_empty_table_renders(self):
        text = Table(["a", "b"]).render()
        assert "a" in text and "b" in text

    def test_str_equals_render(self):
        table = Table(["x"]).add_row(1)
        assert str(table) == table.render()

    def test_bool_cells_render_as_words(self):
        table = Table(["flag"]).add_row(True)
        assert "True" in table.render()
