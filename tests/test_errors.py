"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc_class",
        [
            errors.IsaError,
            errors.AssemblerError,
            errors.ExecutionError,
            errors.InvalidPcError,
            errors.StepLimitExceeded,
            errors.AnalysisError,
            errors.DistillError,
            errors.MsspError,
            errors.ProtectedAccessError,
            errors.TimingError,
            errors.WorkloadError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc_class):
        assert issubclass(exc_class, errors.ReproError)

    def test_execution_error_subtypes(self):
        assert issubclass(errors.InvalidPcError, errors.ExecutionError)
        assert issubclass(errors.StepLimitExceeded, errors.ExecutionError)


class TestMessages:
    def test_assembler_error_line_prefix(self):
        error = errors.AssemblerError("bad operand", line=7)
        assert "line 7" in str(error)
        assert error.line == 7

    def test_assembler_error_without_line(self):
        error = errors.AssemblerError("bad operand")
        assert "line" not in str(error)

    def test_invalid_pc_carries_fields(self):
        error = errors.InvalidPcError(42, 10)
        assert error.pc == 42
        assert error.text_size == 10
        assert "42" in str(error)

    def test_step_limit_carries_limit(self):
        error = errors.StepLimitExceeded(1000)
        assert error.limit == 1000

    def test_protected_access_describes_direction(self):
        store = errors.ProtectedAccessError(5, is_store=True)
        load = errors.ProtectedAccessError(5, is_store=False)
        assert "store" in str(store)
        assert "load" in str(load)
        assert store.address == load.address == 5
