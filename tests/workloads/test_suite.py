"""Tests for the workload suite: every workload, smaller sizes.

Checks the framework contracts (code identity across seeds, data layout,
termination, nonzero results) and — the expensive but crucial part —
full-pipeline MSSP equivalence per workload.
"""

import pytest

from repro.errors import WorkloadError
from repro.machine import run_to_halt
from repro.workloads import (
    RESULT_BASE,
    WORKLOADS,
    get_workload,
    workload_names,
)

#: Reduced sizes for fast test runs.
SMALL_SIZES = {
    "compress": 600,
    "pointer_chase": 300,
    "branchy": 500,
    "parse": 500,
    "hashlookup": 300,
    "matmul": 6,
    "crc": 300,
    "sort": 50,
    "treewalk": 255,
    "stringops": 60,
    "fib_memo": 600,
    "interp": 12,
    "mispredict": 1100,
}

ALL_NAMES = sorted(WORKLOADS)


def small_instance(name):
    return get_workload(name).instance(SMALL_SIZES[name])


class TestRegistry:
    def test_thirteen_workloads(self):
        assert len(WORKLOADS) == 13
        assert set(workload_names()) == set(SMALL_SIZES)

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            get_workload("nope")

    def test_bad_size_rejected(self):
        with pytest.raises(WorkloadError):
            get_workload("compress").instance(0)


class TestFrameworkContracts:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_code_identical_across_seeds(self, name):
        """Profiles must line up pc-for-pc across inputs."""
        instance = small_instance(name)
        for train in instance.train_programs:
            assert train.code == instance.program.code
            assert train.entry == instance.program.entry

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_train_and_eval_data_differ(self, name):
        instance = small_instance(name)
        assert dict(instance.train_programs[0].memory) != dict(
            instance.program.memory
        )

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_halts_and_produces_result(self, name):
        instance = small_instance(name)
        result = run_to_halt(instance.program, max_steps=5_000_000)
        assert result.halted
        assert result.state.load(RESULT_BASE) != 0

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_no_guard_ever_fires(self, name):
        """The integrity guards are never-taken by construction."""
        instance = small_instance(name)
        result = run_to_halt(instance.program, max_steps=5_000_000)
        assert result.state.load(RESULT_BASE + 7) == 0

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_results_input_dependent(self, name):
        """Different seeds produce different observable results
        (guards the suite against degenerate data generators)."""
        if name == "interp":
            pytest.skip("guest output depends on masked sums; may collide")
        instance = small_instance(name)
        eval_result = run_to_halt(instance.program, max_steps=5_000_000)
        train_result = run_to_halt(
            instance.train_programs[0], max_steps=5_000_000
        )
        assert eval_result.state.load(RESULT_BASE) != train_result.state.load(
            RESULT_BASE
        )


class TestMsspEquivalencePerWorkload:
    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_full_pipeline_equivalence(self, name):
        """Profile -> distill -> MSSP == SEQ, for every workload."""
        from repro.experiments import evaluate, prepare

        prepared = prepare(get_workload(name), size=SMALL_SIZES[name])
        row = evaluate(prepared)  # evaluate() checks equivalence itself
        assert row.counters.total_instrs == prepared.seq_instrs
        assert row.counters.tasks_committed > 0

    @pytest.mark.parametrize("name", sorted(set(ALL_NAMES) - {"sort", "matmul"}))
    def test_distillation_shortens_dynamic_path(self, name):
        """Distilled dynamic length < original for the distillable
        workloads (sort/matmul are the deliberate exceptions: regular
        kernels with nothing to remove, as in the paper)."""
        from repro.experiments import prepare

        prepared = prepare(get_workload(name), size=SMALL_SIZES[name])
        assert prepared.distillation_ratio < 1.0
