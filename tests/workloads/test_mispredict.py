"""The ``mispredict`` workload: the adversarial input it promises to be.

Pins the seed-search invariants (flat training tables, drifting
evaluation table), the squash behaviour the phase shifts provoke, and
the acceptance criterion of the adaptive prediction loop: with
predictors + re-distillation enabled, the squashing workloads squash
*strictly less* than the static baseline.
"""

import random

import pytest

from repro.config import MsspConfig
from repro.experiments import evaluate, prepare
from repro.workloads import get_workload
from repro.workloads.mispredict import (
    BASE_MODE,
    EVAL_SEED,
    MODE_BASE,
    MODE_SLOTS,
    TRAIN_SEEDS,
    drift_for,
    gen_data,
    phase_shift,
)

from tests.workloads.test_suite import SMALL_SIZES

#: The workloads whose default-configuration runs actually squash —
#: the before/after population for the adaptive loop.
SQUASHING = ("hashlookup", "fib_memo", "mispredict")


class TestSeedProperties:
    def test_training_seeds_are_flat(self):
        """Every training input has drift 0: the mode table is constant
        and the distiller will specialize the mode load."""
        for seed in TRAIN_SEEDS:
            assert drift_for(random.Random(seed)) == 0
            data = gen_data(512, random.Random(seed))
            modes = {data[MODE_BASE + s] for s in range(MODE_SLOTS)}
            assert modes == {BASE_MODE}

    def test_eval_seed_drifts(self):
        """The evaluation input shifts the mode across phases."""
        assert drift_for(random.Random(EVAL_SEED)) > 0
        data = gen_data(2047, random.Random(EVAL_SEED))
        modes = {data[MODE_BASE + s] for s in range(MODE_SLOTS)}
        assert len(modes) > 1
        # The top phase still matches training, so the first phase of
        # the run is clean before the shifts begin.
        top = (2047 >> phase_shift(2047)) & (MODE_SLOTS - 1)
        assert data[MODE_BASE + top] == BASE_MODE

    def test_phase_shift_gives_phases_at_every_scale(self):
        """Even the 0.1-scale CI smoke sizes see several phases."""
        for size in (64, 204, 1100, 2047):
            phases = size >> phase_shift(size)
            assert 4 <= phases <= 7

    def test_mode_load_gets_specialized(self):
        prepared = prepare(
            get_workload("mispredict"), size=SMALL_SIZES["mispredict"]
        )
        stats = prepared.distillation.report.pass_stats["value_spec"]
        assert any(
            value == BASE_MODE for _, value in stats.specialized_sites
        )


class TestAdversarialBehaviour:
    def test_baseline_squashes_heavily(self):
        prepared = prepare(
            get_workload("mispredict"), size=SMALL_SIZES["mispredict"]
        )
        row = evaluate(prepared)
        counters = row.counters
        assert counters.tasks_squashed > 10
        assert counters.squash_reasons.get("register-live-in", 0) > 10


class TestAdaptiveAcceptance:
    @pytest.mark.parametrize("name", SQUASHING)
    def test_adaptation_strictly_reduces_squashes(self, name):
        """The PR's acceptance criterion: predictors + re-distillation
        squash strictly less than the static configuration, while the
        run stays SEQ-equivalent (evaluate checks it).  Default sizes —
        the same population ``repro bench`` records — because the tiny
        test sizes spread their few squashes across regions without
        crossing the trigger threshold."""
        prepared = prepare(get_workload(name))
        baseline = evaluate(prepared)
        adaptive = evaluate(
            prepared, mssp_config=MsspConfig().with_adaptation()
        )
        assert baseline.counters.tasks_squashed > 0
        assert (
            adaptive.counters.tasks_squashed
            < baseline.counters.tasks_squashed
        )

    def test_mispredict_redistills(self):
        prepared = prepare(
            get_workload("mispredict"), size=SMALL_SIZES["mispredict"]
        )
        adaptive = evaluate(
            prepared, mssp_config=MsspConfig().with_adaptation()
        )
        assert adaptive.counters.redistillations >= 1

    def test_counters_surface_in_summary(self):
        prepared = prepare(
            get_workload("mispredict"), size=SMALL_SIZES["mispredict"]
        )
        adaptive = evaluate(
            prepared,
            mssp_config=MsspConfig().with_adaptation(
                redistill_threshold=None
            ),
        )
        summary = adaptive.counters.summary()
        assert summary["predictor_hits"] > 0
        assert "predictor_misses" in summary
        assert "redistillations" in summary
