"""Acceptance: every registered workload's distillation is lint-clean.

This is the same contract ``repro lint --all`` enforces from the CLI,
run at the test suite's small sizes: the original program, every
intermediate IR state (via ``verify_after_each_pass``), and the final
distilled-program/pc-map pair all pass the static checker with zero
errors.
"""

import dataclasses

import pytest

from repro.analysis.checker import check_distillation, check_program
from repro.config import DistillConfig
from repro.distill.distiller import Distiller
from repro.experiments.harness import training_profile
from repro.workloads import get_workload
from tests.workloads.test_suite import SMALL_SIZES

VERIFYING = dataclasses.replace(
    DistillConfig(), verify_after_each_pass=True
)


@pytest.mark.parametrize("name", sorted(SMALL_SIZES))
def test_workload_distillation_is_lint_clean(name):
    instance = get_workload(name).instance(SMALL_SIZES[name])
    program_report = check_program(instance.program, subject=name)
    assert program_report.ok, program_report.render()
    # verify_after_each_pass raises CheckFailure on any unsound
    # intermediate IR state, so reaching the artifact check means every
    # pass kept its declared invariants.
    distillation = Distiller(VERIFYING).distill(
        instance.program, training_profile(instance)
    )
    report = check_distillation(
        instance.program, distillation.distilled, distillation.pc_map,
        subject=f"{name}: distilled",
    )
    assert report.ok, report.render()
