"""Differential tests: the pre-decoded engine vs the semantic oracle.

:func:`repro.machine.semantics.execute` is the one true definition of
instruction semantics; :mod:`repro.machine.decoded` re-derives it at
decode time.  These tests hold the two bit-identical — final states,
step counts, and per-step effect streams, with and without observers —
over hand-written corner cases and random terminating programs.
"""

import pickle
import sys
from copy import deepcopy
from pathlib import Path

import pytest
from hypothesis import given, settings

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from strategies import terminating_programs  # noqa: E402

from repro.errors import InvalidPcError, StepLimitExceeded
from repro.isa.asm import assemble
from repro.machine.decoded import (
    EFFECT_FALL,
    EFFECT_HALT,
    EFFECT_TAKEN,
    DecodedProgram,
    decode,
)
from repro.machine.interpreter import run, run_to_halt, seq
from repro.machine.semantics import execute
from repro.machine.state import ArchState


def snapshot(effect):
    """Value snapshot of a StepEffect (they may be interned singletons)."""
    return (
        effect.halted, effect.taken, effect.mem_addr, effect.mem_value,
        effect.is_store,
    )


def oracle_run(program, state, max_steps=1_000_000, observer=None):
    """The seed interpreter loop, verbatim (per-step execute dispatch)."""
    code = program.code
    size = len(code)
    steps = 0
    while True:
        pc = state.pc
        if not 0 <= pc < size:
            raise InvalidPcError(pc, size)
        instr = code[pc]
        effect = execute(instr, state)
        if effect.halted:
            if observer is not None:
                observer(pc, instr, effect, state)
            return steps, True
        steps += 1
        if observer is not None:
            observer(pc, instr, effect, state)
        if steps >= max_steps:
            raise StepLimitExceeded(max_steps)


def assert_equivalent(program, max_steps=1_000_000):
    """Run both engines from boot; compare states, counts, and effects."""
    oracle_state = ArchState.initial(program)
    oracle_trace = []

    def oracle_observer(pc, instr, effect, state):
        oracle_trace.append((pc, instr, snapshot(effect)))

    oracle_steps, oracle_halted = oracle_run(
        program, oracle_state, max_steps, oracle_observer
    )

    # Decoded, observer attached (per-step path).
    observed_state = ArchState.initial(program)
    observed_trace = []
    result = run(
        program, observed_state, max_steps=max_steps,
        observer=lambda pc, instr, effect, state: observed_trace.append(
            (pc, instr, snapshot(effect))
        ),
    )
    assert result.steps == oracle_steps
    assert result.halted == oracle_halted
    assert observed_state == oracle_state
    assert observed_trace == oracle_trace

    # Decoded, no observer (superstep fast path).
    fast_state = ArchState.initial(program)
    fast = run(program, fast_state, max_steps=max_steps)
    assert fast.steps == oracle_steps
    assert fast.halted == oracle_halted
    assert fast_state == oracle_state


FIXTURE = """
        .data
value:  .word 7
        .text
main:   li r1, 10
        li r2, 0
loop:   add r2, r2, r1
        addi r1, r1, -1
        bne r1, r0, loop
        lw r3, value(r0)
        mul r2, r2, r3
        sw r2, value(r0)
        jal leaf
        sll r0, r2, r2      # folded: writes the ZERO register
        halt
leaf:   addi r2, r2, 1
        jr r31
"""


class TestDifferentialFixtures:
    def test_fixture_program_equivalent(self):
        assert_equivalent(assemble(FIXTURE))

    def test_every_workload_boot_run_equivalent(self):
        from repro.workloads import WORKLOADS, get_workload

        for name in WORKLOADS:
            spec = get_workload(name)
            program = spec.instance(max(4, spec.default_size // 10)).program
            assert_equivalent(program, max_steps=2_000_000)

    def test_step_limit_fires_at_identical_instruction(self):
        program = assemble(FIXTURE)
        for limit in (1, 2, 3, 5, 8, 13, 21):
            oracle_state = ArchState.initial(program)
            with pytest.raises(StepLimitExceeded):
                oracle_run(program, oracle_state, max_steps=limit)
            fast_state = ArchState.initial(program)
            with pytest.raises(StepLimitExceeded):
                run(program, fast_state, max_steps=limit)
            # The budget must fire after exactly the same instruction,
            # leaving bit-identical states (superstep may not overshoot).
            assert fast_state == oracle_state

    def test_invalid_pc_parity(self):
        program = assemble(".text\nmain: j end\nend: halt\n")
        state = ArchState.initial(program)
        state.pc = 99
        with pytest.raises(InvalidPcError):
            run(program, state, max_steps=10)

    def test_seq_matches_oracle_prefixes(self):
        program = assemble(FIXTURE)
        reference = ArchState.initial(program)
        for n in range(0, 40, 7):
            advanced = seq(program, ArchState.initial(program), n)
            oracle = ArchState.initial(program)
            for _ in range(n):
                if execute(program.code[oracle.pc], oracle).halted:
                    break
            assert advanced == oracle
        assert ArchState.initial(program) == reference  # seq copies


class TestDifferentialRandom:
    @settings(max_examples=60, deadline=None)
    @given(terminating_programs())
    def test_random_programs_equivalent(self, program):
        assert_equivalent(program)

    @settings(max_examples=30, deadline=None)
    @given(terminating_programs())
    def test_stepwise_effect_stream_identical(self, program):
        """Manual stepping: one stepper call vs one execute call, lockstep."""
        decoded = decode(program)
        a = ArchState.initial(program)
        b = ArchState.initial(program)
        for _ in range(3_000):
            assert a.pc == b.pc
            effect_fast = decoded.steppers[a.pc](a)
            effect_oracle = execute(program.code[b.pc], b)
            assert snapshot(effect_fast) == snapshot(effect_oracle)
            assert a == b
            if effect_oracle.halted:
                break

    @settings(max_examples=20, deadline=None)
    @given(terminating_programs())
    def test_oracle_mode_decoding_matches_fast_mode(self, program):
        """DecodedProgram(oracle=True) is plumbing-identical to fast mode."""
        fast_state = ArchState.initial(program)
        fast = decode(program).run(fast_state, 1_000_000)
        oracle_state = ArchState.initial(program)
        oracle = decode(program, oracle=True).run(oracle_state, 1_000_000)
        assert fast == oracle
        assert fast_state == oracle_state


class TestInternedEffects:
    def test_common_effects_are_singletons(self):
        program = assemble(
            ".text\nmain: addi r1, r0, 1\n beq r1, r0, main\n j skip\n"
            "skip: halt\n"
        )
        decoded = decode(program)
        state = ArchState.initial(program)
        assert decoded.steppers[0](state) is EFFECT_FALL   # ALU
        assert decoded.steppers[1](state) is EFFECT_FALL   # branch not taken
        assert decoded.steppers[2](state) is EFFECT_TAKEN  # jump
        assert decoded.steppers[3](state) is EFFECT_HALT   # halt
        state.pc = 1
        state.write_reg(1, 0)
        assert decoded.steppers[1](state) is EFFECT_TAKEN  # branch taken

    def test_memory_effects_are_fresh(self):
        program = assemble(".text\nmain: lw r1, 5(r0)\n sw r1, 6(r0)\n halt\n")
        decoded = decode(program)
        state = ArchState.initial(program)
        load_effect = decoded.steppers[0](state)
        store_effect = decoded.steppers[1](state)
        assert load_effect.mem_addr == 5 and not load_effect.is_store
        assert store_effect.mem_addr == 6 and store_effect.is_store
        assert load_effect is not store_effect


class TestZeroRegisterFolding:
    def test_zero_writes_folded_but_reads_still_observed(self):
        """rd == ZERO closures skip the write yet perform operand reads."""
        program = assemble(
            ".text\nmain: li r1, 3\n add r0, r1, r1\n lw r0, 0(r1)\n"
            " li r0, 9\n mov r0, r1\n halt\n"
        )
        assert_equivalent(program)
        state = ArchState.initial(program)
        run(program, state, max_steps=100)
        assert state.read_reg(0) == 0

    def test_zero_read_recording_matches_on_slave_view(self):
        """Recording views see identical live-in sets both ways."""
        from repro.mssp.slave import SlaveView
        from repro.mssp.task import Checkpoint

        program = assemble(
            ".text\nmain: add r2, r1, r3\n lw r4, 16(r2)\n"
            " add r0, r5, r6\n sw r4, 0(r2)\n halt\n"
        )
        decoded = decode(program)
        arch = ArchState(mem={16: 42})

        def run_on_view(stepper_for):
            view = SlaveView(
                Checkpoint(regs=tuple(range(32)), mem={}), arch, 0
            )
            while True:
                if stepper_for(view).halted:
                    break
            return view

        fast = run_on_view(lambda view: decoded.steppers[view.pc](view))
        oracle = run_on_view(
            lambda view: execute(program.code[view.pc], view)
        )
        assert fast.live_in_regs == oracle.live_in_regs
        assert fast.live_in_mem == oracle.live_in_mem
        assert fast.live_out_regs() == oracle.live_out_regs()
        assert fast.live_out_mem() == oracle.live_out_mem()


class TestDecodeCache:
    def test_decode_is_cached_per_program_identity(self):
        program = assemble(".text\nmain: halt\n")
        assert decode(program) is decode(program)
        twin = assemble(".text\nmain: halt\n")
        assert decode(twin) is not decode(program)

    def test_oracle_and_fast_cached_separately(self):
        program = assemble(".text\nmain: halt\n")
        assert decode(program) is not decode(program, oracle=True)
        assert decode(program, oracle=True) is decode(program, oracle=True)

    def test_pickle_and_deepcopy_exclude_decode_cache(self):
        program = assemble(".text\nmain: li r1, 1\n halt\n")
        decode(program)  # populate the cache attachment
        revived = pickle.loads(pickle.dumps(program))
        assert "_decoded_cache" not in revived.__dict__
        assert revived == program
        cloned = deepcopy(program)
        assert "_decoded_cache" not in cloned.__dict__
        # And the revived program still decodes and runs.
        assert run_to_halt(revived).steps == run_to_halt(program).steps

    def test_chain_structure_covers_whole_text(self):
        program = assemble(FIXTURE)
        decoded = decode(program)
        assert len(decoded.steppers) == len(program.code)
        assert len(decoded.chains) == len(program.code)
        for pc, chain in enumerate(decoded.chains):
            assert 1 <= len(chain) <= len(program.code) - pc

    def test_direct_construction_matches_cached(self):
        program = assemble(FIXTURE)
        direct = DecodedProgram(program)
        cached = decode(program)
        assert direct.meta == cached.meta
