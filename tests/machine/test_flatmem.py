"""Unit + differential tests for the flat paged memory backend."""

import pickle
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.flatmem import (
    PAGE_BITS,
    PAGE_SIZE,
    CheckMemory,
    MemoryCheckError,
    PagedMemory,
    as_dict,
    make_memory,
    resolve_mem_backend,
)
from repro.machine.state import ArchState, wrap64


class TestBackendResolution:
    def test_default_is_dict(self, monkeypatch):
        monkeypatch.delenv("REPRO_MEM", raising=False)
        assert resolve_mem_backend(None) == "dict"

    def test_env_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEM", "flat")
        assert resolve_mem_backend(None) == "flat"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_MEM", "flat")
        assert resolve_mem_backend("check") == "check"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            resolve_mem_backend("mmap")

    def test_make_memory_kinds(self):
        assert isinstance(make_memory("dict", {1: 2}), dict)
        assert isinstance(make_memory("flat", {1: 2}), PagedMemory)
        assert isinstance(make_memory("check", {1: 2}), CheckMemory)

    def test_archstate_backend_param(self):
        state = ArchState(mem={4: 9}, backend="flat")
        assert isinstance(state.mem, PagedMemory)
        assert state.load(4) == 9


class TestPagedMemoryBasics:
    def test_absent_reads_default(self):
        mem = PagedMemory()
        assert mem.get(123) == 0
        assert mem.get(123, None) is None
        assert 123 not in mem

    def test_store_load_roundtrip(self):
        mem = PagedMemory()
        mem[10] = -5
        assert mem[10] == -5
        assert mem.get(10) == -5
        assert 10 in mem

    def test_zero_slot_is_absent(self):
        mem = PagedMemory({10: 7})
        mem[10] = 0
        assert 10 not in mem
        with pytest.raises(KeyError):
            mem[10]
        assert len(mem) == 0
        assert not mem

    def test_pop(self):
        mem = PagedMemory({10: 7})
        assert mem.pop(10, None) == 7
        assert mem.pop(10, None) is None
        assert mem.pop(99, "d") == "d"

    def test_negative_addresses(self):
        mem = PagedMemory()
        mem[-1] = 4
        mem[-PAGE_SIZE - 1] = 5
        assert mem[-1] == 4
        assert mem[-PAGE_SIZE - 1] == 5
        assert sorted(mem.keys()) == [-PAGE_SIZE - 1, -1]
        assert set(mem.pages) == {-1, -2}

    def test_mapping_protocol_matches_dict(self):
        image = {0: 1, 511: 2, 512: 3, 10_000: -4, -7: 5}
        mem = PagedMemory(image)
        assert dict(mem.items()) == image
        assert set(mem.keys()) == set(image)
        assert sorted(mem.values()) == sorted(image.values())
        assert len(mem) == len(image)
        assert dict(mem) == image
        assert as_dict(mem) == image
        assert mem.to_dict() == image

    def test_eq_against_dict_and_paged(self):
        image = {5: 1, PAGE_SIZE + 3: -2}
        a, b = PagedMemory(image), PagedMemory(image)
        assert a == b
        assert a == image
        assert not a == {5: 1}
        b[5] = 99
        assert a != b
        # an all-zero page is equal to no page at all
        c = PagedMemory(image)
        c[7] = 1
        c[7] = 0
        assert c == a

    def test_init_drops_zero_entries(self):
        # a non-canonical init mapping is canonicalized on entry
        mem = PagedMemory({1: 0, 2: 5})
        assert 1 not in mem
        assert len(mem) == 1


class TestBulkOps:
    def test_copy_is_independent(self):
        mem = PagedMemory({1: 2})
        clone = mem.copy()
        clone[1] = 9
        clone[2] = 3
        assert mem[1] == 2
        assert 2 not in mem

    def test_copy_is_o_touched_pages(self):
        # two cells a terabyte apart: exactly two pages, and the copy
        # duplicates pages, never the address space
        mem = PagedMemory({0: 1, 10**12: 2})
        assert len(mem.pages) == 2
        clone = mem.copy()
        assert len(clone.pages) == 2
        assert clone == mem

    def test_archstate_flat_copy_page_level(self):
        state = ArchState(mem={0: 1, 10**12: 2}, backend="flat")
        clone = state.copy()
        assert isinstance(clone.mem, PagedMemory)
        assert len(clone.mem.pages) == 2
        assert clone == state

    def test_equal_run_within_and_across_pages(self):
        from array import array

        mem = PagedMemory()
        start = PAGE_SIZE - 3
        values = [1, 2, 3, 4, 5, 6]
        for i, v in enumerate(values):
            mem[start + i] = v
        assert mem.equal_run(start, array("q", values))
        wrong = array("q", values)
        wrong[4] = 99
        assert not mem.equal_run(start, wrong)

    def test_equal_run_absent_pages_read_zero(self):
        from array import array

        mem = PagedMemory()
        assert mem.equal_run(12345, array("q", [0] * 20))
        assert not mem.equal_run(12345, array("q", [0] * 19 + [1]))


class TestPickling:
    def test_paged_memory_roundtrip(self):
        image = {0: 1, PAGE_SIZE: -9, 10**9: 7}
        mem = PagedMemory(image)
        clone = pickle.loads(pickle.dumps(mem))
        assert isinstance(clone, PagedMemory)
        assert clone == mem
        assert clone.to_dict() == image

    def test_archstate_flat_roundtrip(self):
        state = ArchState(mem={4: 2, 700: -1}, pc=9, backend="flat")
        state.write_reg(3, 5)
        clone = pickle.loads(pickle.dumps(state))
        assert isinstance(clone.mem, PagedMemory)
        assert clone == state

    def test_check_memory_roundtrip(self):
        mem = CheckMemory({4: 2})
        clone = pickle.loads(pickle.dumps(mem))
        assert isinstance(clone, CheckMemory)
        assert clone == {4: 2}


class TestCheckMemory:
    def test_lockstep_ops_agree(self):
        mem = CheckMemory()
        mem[5] = 7
        assert mem[5] == 7
        assert mem.get(5) == 7
        assert 5 in mem
        assert mem.pop(5) == 7
        assert 5 not in mem
        mem.verify_image()

    def test_divergence_raises(self):
        mem = CheckMemory({5: 7})
        mem.flat[5] = 8  # corrupt the flat backing behind the oracle's back
        with pytest.raises(MemoryCheckError):
            mem.get(5)

    def test_image_divergence_raises(self):
        mem = CheckMemory({5: 7})
        mem.flat[6] = 1
        with pytest.raises(MemoryCheckError):
            mem.verify_image()

    def test_archstate_check_backend(self):
        state = ArchState(backend="check")
        state.store(5, 3)
        state.store(5, 0)
        assert state.load(5) == 0
        state.mem.verify_image()


@settings(deadline=None, max_examples=60)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["set", "pop", "get", "contains"]),
            # cluster addresses around page boundaries to stress paging
            st.integers(min_value=-2, max_value=2).map(
                lambda k: k * PAGE_SIZE
            ).flatmap(
                lambda base: st.integers(base - 3, base + 3)
            ),
            st.integers(min_value=-(2**63), max_value=2**63 - 1),
        ),
        max_size=80,
    )
)
def test_paged_memory_differential_vs_dict(ops):
    """Random op sequences observe identical behavior on both backends."""
    flat, oracle = PagedMemory(), {}
    for op, address, value in ops:
        if op == "set":
            flat[address] = value
            if value:
                oracle[address] = value
            else:
                oracle.pop(address, None)
        elif op == "pop":
            assert flat.pop(address, None) == oracle.pop(address, None)
        elif op == "get":
            assert flat.get(address, None) == oracle.get(address, None)
        else:
            assert (address in flat) == (address in oracle)
    assert flat == oracle
    assert flat.to_dict() == oracle
    assert len(flat) == len(oracle)


def test_random_store_sequence_state_differential():
    """ArchState store/load streams agree across dict and flat backends."""
    rng = random.Random(1234)
    dict_state = ArchState(backend="dict")
    flat_state = ArchState(backend="flat")
    addresses = [rng.randrange(-1000, 100_000) for _ in range(50)]
    for step in range(600):
        address = rng.choice(addresses)
        if rng.random() < 0.6:
            value = rng.choice([0, 1, -1, 2**62, -(2**63), rng.getrandbits(64)])
            dict_state.store(address, value)
            flat_state.store(address, value)
        else:
            assert dict_state.load(address) == flat_state.load(address)
    assert flat_state == dict_state
    assert dict_state.diff(flat_state) == []
    assert wrap64(sum(flat_state.mem.values()) ) == wrap64(sum(dict_state.mem.values()))
