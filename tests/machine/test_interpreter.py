"""Tests for the sequential interpreter (run / seq / step)."""

import pytest
from hypothesis import given, settings

from repro.errors import InvalidPcError, StepLimitExceeded
from repro.isa.asm import assemble
from repro.machine.interpreter import (
    count_dynamic_instructions,
    run,
    run_to_halt,
    seq,
    step,
)
from repro.machine.state import ArchState

from tests.strategies import terminating_programs

COUNTDOWN = """
main:   li r1, 4
loop:   addi r1, r1, -1
        bne r1, zero, loop
        halt
"""

SUM_LOOP = """
main:   li r1, 0        # sum
        li r2, 1        # i
        li r3, 11       # limit
loop:   add r1, r1, r2
        addi r2, r2, 1
        bne r2, r3, loop
        sw r1, 100(zero)
        halt
"""


class TestRun:
    def test_countdown(self):
        result = run_to_halt(assemble(COUNTDOWN))
        assert result.halted
        assert result.state.regs[1] == 0
        # li + 4 * (addi + bne) = 9 executed instructions
        assert result.steps == 9

    def test_sum_loop_result_in_memory(self):
        result = run_to_halt(assemble(SUM_LOOP))
        assert result.state.load(100) == sum(range(1, 11))

    def test_step_limit(self):
        infinite = assemble("main: j main\nhalt")
        with pytest.raises(StepLimitExceeded):
            run(infinite, max_steps=100)

    def test_invalid_pc_detected(self):
        # jr into nowhere
        program = assemble("li r1, 999\njr r1\nhalt")
        with pytest.raises(InvalidPcError):
            run(program)

    def test_observer_sees_every_step_and_the_halt(self):
        seen = []
        run(
            assemble(COUNTDOWN),
            observer=lambda pc, instr, effect, state: seen.append(pc),
        )
        assert seen == [0, 1, 2, 1, 2, 1, 2, 1, 2, 3]

    def test_halt_not_counted_as_step(self):
        assert run_to_halt(assemble("halt")).steps == 0

    def test_run_uses_given_state(self):
        program = assemble(COUNTDOWN)
        state = ArchState(pc=program.entry)
        result = run(program, state=state)
        assert result.state is state


class TestStep:
    def test_single_step(self):
        program = assemble(COUNTDOWN)
        state = ArchState(pc=0)
        effect = step(program, state)
        assert not effect.halted
        assert state.pc == 1
        assert state.regs[1] == 4

    def test_step_out_of_range(self):
        program = assemble("halt")
        with pytest.raises(InvalidPcError):
            step(program, ArchState(pc=5))


class TestSeq:
    def test_seq_zero_is_identity(self):
        program = assemble(COUNTDOWN)
        state = ArchState(pc=0)
        state.write_reg(9, 7)
        advanced = seq(program, state, 0)
        assert advanced == state
        assert advanced is not state

    def test_seq_matches_stepping(self):
        program = assemble(SUM_LOOP)
        state = ArchState(pc=program.entry)
        manual = state.copy()
        for _ in range(7):
            step(program, manual)
        assert seq(program, state, 7) == manual

    def test_seq_does_not_mutate_input(self):
        program = assemble(COUNTDOWN)
        state = ArchState(pc=0)
        seq(program, state, 5)
        assert state == ArchState(pc=0)

    def test_seq_past_halt_is_fixed_point(self):
        program = assemble("halt")
        state = ArchState(pc=0)
        assert seq(program, state, 100) == state

    def test_seq_composes(self):
        """seq(S, a+b) == seq(seq(S, a), b) — determinism of SEQ."""
        program = assemble(SUM_LOOP)
        state = ArchState(pc=program.entry)
        assert seq(program, state, 12) == seq(program, seq(program, state, 5), 7)

    @given(terminating_programs())
    @settings(max_examples=20, deadline=None)
    def test_seq_composition_random(self, program):
        state = ArchState.initial(program)
        whole = seq(program, state, 30)
        split = seq(program, seq(program, state, 13), 17)
        assert whole == split


class TestCounting:
    def test_count_dynamic_instructions(self):
        assert count_dynamic_instructions(assemble(COUNTDOWN)) == 9

    @given(terminating_programs())
    @settings(max_examples=15, deadline=None)
    def test_random_programs_terminate(self, program):
        result = run_to_halt(program, max_steps=1_000_000)
        assert result.halted
