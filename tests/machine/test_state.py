"""Unit tests for ArchState."""

import pytest

from repro.isa.asm import assemble
from repro.isa.registers import NUM_REGS, ZERO
from repro.machine.state import ArchState, wrap64


class TestWrap64:
    def test_identity_in_range(self):
        assert wrap64(0) == 0
        assert wrap64(2 ** 63 - 1) == 2 ** 63 - 1
        assert wrap64(-(2 ** 63)) == -(2 ** 63)

    def test_wraps_positive_overflow(self):
        assert wrap64(2 ** 63) == -(2 ** 63)
        assert wrap64(2 ** 64) == 0
        assert wrap64(2 ** 64 + 5) == 5

    def test_wraps_negative_overflow(self):
        assert wrap64(-(2 ** 63) - 1) == 2 ** 63 - 1


class TestRegisters:
    def test_r0_hardwired_zero(self):
        state = ArchState()
        state.write_reg(ZERO, 99)
        assert state.read_reg(ZERO) == 0

    def test_writes_wrap(self):
        state = ArchState()
        state.write_reg(1, 2 ** 64 + 7)
        assert state.read_reg(1) == 7

    def test_reg_count_enforced(self):
        with pytest.raises(ValueError):
            ArchState(regs=[0] * (NUM_REGS - 1))


class TestMemory:
    def test_unmapped_reads_zero(self):
        assert ArchState().load(12345) == 0

    def test_store_load(self):
        state = ArchState()
        state.store(10, -5)
        assert state.load(10) == -5

    def test_zero_store_erases(self):
        state = ArchState(mem={10: 7})
        state.store(10, 0)
        assert 10 not in state.mem
        assert state.load(10) == 0

    def test_store_wraps(self):
        state = ArchState()
        state.store(1, 2 ** 63)
        assert state.load(1) == -(2 ** 63)


class TestCopyEquality:
    def test_copy_is_independent(self):
        state = ArchState(mem={1: 2}, pc=3)
        state.write_reg(5, 9)
        clone = state.copy()
        clone.write_reg(5, 0)
        clone.store(1, 0)
        clone.pc = 0
        assert state.read_reg(5) == 9
        assert state.load(1) == 2
        assert state.pc == 3

    def test_mutating_original_never_leaks_into_copy(self):
        """Mutation isolation in the other direction, regs and mem.

        ``copy()`` bypasses ``__init__`` with ``list.copy``/``dict.copy``
        (checkpoint hot path); this pins that the containers really are
        duplicated, not aliased.
        """
        state = ArchState(mem={7: 1}, pc=5)
        state.write_reg(2, 11)
        clone = state.copy()
        assert clone.regs is not state.regs
        assert clone.mem is not state.mem
        state.write_reg(2, 99)
        state.store(7, 42)
        state.store(8, 8)
        state.pc = 0
        assert clone.read_reg(2) == 11
        assert clone.load(7) == 1
        assert clone.load(8) == 0
        assert clone.pc == 5

    def test_copy_preserves_semantics(self):
        """The fast copy behaves exactly like a freshly built state."""
        state = ArchState(mem={1: 2}, pc=3)
        state.write_reg(4, -1)
        clone = state.copy()
        assert clone == state
        clone.write_reg(0, 5)  # ZERO stays hardwired through the copy
        assert clone.read_reg(0) == 0
        clone.store(1, 0)  # sparse canonical form survives the copy
        assert 1 not in clone.mem

    def test_equality_semantics(self):
        a = ArchState(mem={1: 2}, pc=0)
        b = ArchState(mem={1: 2}, pc=0)
        assert a == b
        b.store(1, 3)
        assert a != b

    def test_sparse_zero_equivalence(self):
        """A stored-then-cleared cell compares equal to a never-stored one."""
        a = ArchState()
        a.store(5, 1)
        a.store(5, 0)
        assert a == ArchState()

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(ArchState())

    def test_diff_reports_all_kinds(self):
        a = ArchState(pc=1)
        b = ArchState(pc=2)
        a.write_reg(3, 7)
        b.store(9, 1)
        issues = a.diff(b)
        assert any("pc" in i for i in issues)
        assert any("r3" in i for i in issues)
        assert any("mem[9]" in i for i in issues)

    def test_diff_empty_when_equal(self):
        assert ArchState().diff(ArchState()) == []


class TestInitialAndDelta:
    def test_initial_from_program(self):
        program = assemble("main: halt\n.data 4\n.word 9")
        state = ArchState.initial(program)
        assert state.pc == program.entry
        assert state.load(4) == 9
        assert all(r == 0 for r in state.regs)

    def test_apply_delta(self):
        state = ArchState()
        state.apply_delta({1: 5, ZERO: 9}, {100: 6}, pc=7)
        assert state.read_reg(1) == 5
        assert state.read_reg(ZERO) == 0
        assert state.load(100) == 6
        assert state.pc == 7

    def test_apply_delta_keeps_pc_when_none(self):
        state = ArchState(pc=3)
        state.apply_delta({}, {})
        assert state.pc == 3

    def test_snapshot_cells(self):
        state = ArchState(mem={4: 2})
        state.write_reg(1, 8)
        regs, mem = state.snapshot_cells([1, 2], [4, 5])
        assert regs == {1: 8, 2: 0}
        assert mem == {4: 2, 5: 0}
