"""Per-instruction semantics tests: every opcode, signs, wrapping, edges."""

import pytest

from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import RA
from repro.machine.semantics import execute
from repro.machine.state import ArchState


def make_state(**regs):
    state = ArchState()
    for name, value in regs.items():
        state.write_reg(int(name[1:]), value)
    return state


def run_r3(op, a, b):
    state = make_state(r1=a, r2=b)
    execute(Instruction(op=op, rd=3, rs=1, rt=2), state)
    return state.read_reg(3)


def run_i2(op, a, imm):
    state = make_state(r1=a)
    execute(Instruction(op=op, rd=3, rs=1, imm=imm), state)
    return state.read_reg(3)


class TestArithmetic:
    @pytest.mark.parametrize(
        "op, a, b, expected",
        [
            (Opcode.ADD, 2, 3, 5),
            (Opcode.ADD, 2 ** 63 - 1, 1, -(2 ** 63)),  # wraps
            (Opcode.SUB, 2, 3, -1),
            (Opcode.SUB, -(2 ** 63), 1, 2 ** 63 - 1),  # wraps
            (Opcode.MUL, -4, 3, -12),
            (Opcode.MUL, 2 ** 40, 2 ** 40, 0),  # wraps to zero
            (Opcode.DIV, 7, 2, 3),
            (Opcode.DIV, -7, 2, -3),  # truncates toward zero
            (Opcode.DIV, 7, -2, -3),
            (Opcode.DIV, -7, -2, 3),
            (Opcode.DIV, 5, 0, 0),  # trap-free
            (Opcode.MOD, 7, 3, 1),
            (Opcode.MOD, -7, 3, -1),  # sign follows dividend
            (Opcode.MOD, 7, -3, 1),
            (Opcode.MOD, 5, 0, 0),
        ],
    )
    def test_r3_arithmetic(self, op, a, b, expected):
        assert run_r3(op, a, b) == expected

    def test_div_mod_identity(self):
        for a in (-17, -1, 0, 1, 23):
            for b in (-5, -1, 1, 7):
                q = run_r3(Opcode.DIV, a, b)
                r = run_r3(Opcode.MOD, a, b)
                assert q * b + r == a


class TestLogicAndShifts:
    @pytest.mark.parametrize(
        "op, a, b, expected",
        [
            (Opcode.AND, 0b1100, 0b1010, 0b1000),
            (Opcode.OR, 0b1100, 0b1010, 0b1110),
            (Opcode.XOR, 0b1100, 0b1010, 0b0110),
            (Opcode.SLL, 1, 4, 16),
            (Opcode.SLL, 1, 63, -(2 ** 63)),  # shifts into sign bit
            (Opcode.SLL, 1, 64, 1),  # amount masked to 6 bits
            (Opcode.SRL, -1, 1, 2 ** 63 - 1),  # logical: zero-fill
            (Opcode.SRA, -8, 1, -4),  # arithmetic: sign-fill
            (Opcode.SRA, -1, 63, -1),
            (Opcode.SRL, 16, 2, 4),
        ],
    )
    def test_shift_logic(self, op, a, b, expected):
        assert run_r3(op, a, b) == expected


class TestComparisons:
    @pytest.mark.parametrize(
        "op, a, b, expected",
        [
            (Opcode.SLT, -1, 0, 1),
            (Opcode.SLT, 0, 0, 0),
            (Opcode.SLE, 0, 0, 1),
            (Opcode.SLE, 1, 0, 0),
            (Opcode.SEQ, 5, 5, 1),
            (Opcode.SEQ, 5, 6, 0),
            (Opcode.SNE, 5, 6, 1),
            (Opcode.SNE, 5, 5, 0),
        ],
    )
    def test_set_instructions(self, op, a, b, expected):
        assert run_r3(op, a, b) == expected

    def test_comparisons_are_signed(self):
        assert run_r3(Opcode.SLT, -(2 ** 63), 2 ** 63 - 1) == 1


class TestImmediates:
    @pytest.mark.parametrize(
        "op, a, imm, expected",
        [
            (Opcode.ADDI, 5, -3, 2),
            (Opcode.MULI, 5, 4, 20),
            (Opcode.ANDI, 0b111, 0b101, 0b101),
            (Opcode.ORI, 0b100, 0b001, 0b101),
            (Opcode.XORI, 0b110, 0b011, 0b101),
            (Opcode.SLLI, 3, 2, 12),
            (Opcode.SRLI, 12, 2, 3),
            (Opcode.SLTI, -1, 0, 1),
        ],
    )
    def test_i2(self, op, a, imm, expected):
        assert run_i2(op, a, imm) == expected

    def test_li_and_mov(self):
        state = ArchState()
        execute(Instruction(op=Opcode.LI, rd=1, imm=-42), state)
        execute(Instruction(op=Opcode.MOV, rd=2, rs=1), state)
        assert state.read_reg(2) == -42
        assert state.pc == 2


class TestMemoryOps:
    def test_load_effect(self):
        state = ArchState(mem={104: 7})
        state.write_reg(2, 100)
        effect = execute(Instruction(op=Opcode.LW, rd=1, rs=2, imm=4), state)
        assert state.read_reg(1) == 7
        assert (effect.mem_addr, effect.mem_value, effect.is_store) == (104, 7, False)

    def test_store_effect(self):
        state = ArchState()
        state.write_reg(2, 100)
        state.write_reg(3, -9)
        effect = execute(Instruction(op=Opcode.SW, rt=3, rs=2, imm=-1), state)
        assert state.load(99) == -9
        assert (effect.mem_addr, effect.mem_value, effect.is_store) == (99, -9, True)

    def test_load_into_base_register(self):
        """rd == rs: the base is consumed before being overwritten."""
        state = ArchState(mem={50: 123})
        state.write_reg(2, 50)
        effect = execute(Instruction(op=Opcode.LW, rd=2, rs=2, imm=0), state)
        assert state.read_reg(2) == 123
        assert effect.mem_addr == 50

    def test_address_wraps(self):
        state = ArchState()
        state.write_reg(2, 2 ** 63 - 1)
        effect = execute(Instruction(op=Opcode.LW, rd=1, rs=2, imm=1), state)
        assert effect.mem_addr == -(2 ** 63)


class TestControlFlow:
    @pytest.mark.parametrize(
        "op, a, b, taken",
        [
            (Opcode.BEQ, 1, 1, True),
            (Opcode.BEQ, 1, 2, False),
            (Opcode.BNE, 1, 2, True),
            (Opcode.BNE, 1, 1, False),
            (Opcode.BLT, -1, 0, True),
            (Opcode.BLT, 0, 0, False),
            (Opcode.BGE, 0, 0, True),
            (Opcode.BGE, -1, 0, False),
        ],
    )
    def test_branches(self, op, a, b, taken):
        state = make_state(r1=a, r2=b)
        state.pc = 5
        effect = execute(Instruction(op=op, rs=1, rt=2, target=20), state)
        assert effect.taken is taken
        assert state.pc == (20 if taken else 6)

    def test_jump(self):
        state = ArchState(pc=3)
        effect = execute(Instruction(op=Opcode.J, target=9), state)
        assert state.pc == 9 and effect.taken

    def test_jal_links(self):
        state = ArchState(pc=3)
        execute(Instruction(op=Opcode.JAL, target=9), state)
        assert state.pc == 9
        assert state.read_reg(RA) == 4

    def test_jr(self):
        state = ArchState(pc=3)
        state.write_reg(5, 17)
        execute(Instruction(op=Opcode.JR, rs=5), state)
        assert state.pc == 17

    def test_halt_is_fixed_point(self):
        state = ArchState(pc=4)
        effect = execute(Instruction(op=Opcode.HALT), state)
        assert effect.halted
        assert state.pc == 4  # pc does not advance past halt

    def test_nop_and_fork_advance(self):
        state = ArchState(pc=0)
        assert not execute(Instruction(op=Opcode.NOP), state).halted
        assert state.pc == 1
        execute(Instruction(op=Opcode.FORK, target=99), state)
        assert state.pc == 2
