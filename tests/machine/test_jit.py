"""Differential tests: the superblock JIT vs the pre-decoded engine.

:mod:`repro.machine.jit` compiles hot basic-block chains to generated
Python.  Its contract is *bit-identical observable behaviour* with the
pre-decoded engine (itself held identical to the semantic oracle by
tests/machine/test_decoded.py): same final states, same step counts,
same ``StepLimitExceeded`` boundary, with every guard (observer deopt,
budget entry/back-edge checks, non-leader deopt) exercised explicitly.
Also covers the persistent code cache (a second process must reuse the
generated sources, not re-trace) and the ``REPRO_EXEC`` tier plumbing.
"""

import pickle
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))
from strategies import terminating_programs  # noqa: E402

from repro.errors import StepLimitExceeded
from repro.isa.asm import assemble
from repro.machine import jit as jit_mod
from repro.machine.decoded import decode
from repro.machine.interpreter import run
from repro.machine.jit import (
    EXEC_TIERS,
    JitProgram,
    block_leaders,
    jit_cache_key,
    jit_for,
    resolve_exec_tier,
)
from repro.machine.state import ArchState

#: A program whose inner loop runs hot enough to compile at the default
#: threshold, with a subroutine (jal/jr), memory traffic, a ZERO-dest
#: write, and a forward branch — every codegen shape in one fixture.
HOT_FIXTURE = """
        .data
acc:    .word 0
        .text
main:   li r1, 40
        li r2, 0
loop:   add r2, r2, r1
        andi r3, r1, 3
        bne r3, r0, skip
        jal leaf
skip:   sw r2, acc(r0)
        lw r4, acc(r0)
        sll r0, r4, r1      # folded: writes the ZERO register
        addi r1, r1, -1
        bne r1, r0, loop
        halt
leaf:   addi r2, r2, 7
        jr r31
"""


def hot_jit(program, mode="arch"):
    """A JitProgram that compiles on first arrival, no disk persistence."""
    return JitProgram(program, mode=mode, threshold=1, persist=False)


def assert_jit_equivalent(program, max_steps=1_000_000):
    """JIT run == decoded run == oracle run, states and counts alike."""
    ref_state = ArchState.initial(program)
    ref = decode(program).run(ref_state, max_steps)

    jp = hot_jit(program)
    jit_state = ArchState.initial(program)
    assert jp.run(jit_state, max_steps) == ref
    assert jit_state == ref_state

    oracle_state = ArchState.initial(program)
    assert decode(program, oracle=True).run(oracle_state, max_steps) == ref
    assert oracle_state == ref_state
    return jp


class TestDifferentialFixtures:
    def test_hot_fixture_equivalent_and_compiled(self):
        jp = assert_jit_equivalent(assemble(HOT_FIXTURE))
        # The test is vacuous unless regions actually ran.
        assert jp.compiled, "the hot loop must have compiled"

    def test_every_workload_boot_run_equivalent(self):
        from repro.workloads import WORKLOADS, get_workload

        for name in WORKLOADS:
            spec = get_workload(name)
            program = spec.instance(max(4, spec.default_size // 10)).program
            jp = assert_jit_equivalent(program, max_steps=2_000_000)
            assert jp.compiled, f"workload {name} never went hot"

    def test_view_mode_equivalent_on_arch_state(self):
        """``view`` codegen (method calls) against a plain ArchState."""
        program = assemble(HOT_FIXTURE)
        ref_state = ArchState.initial(program)
        ref = decode(program).run(ref_state, 1_000_000)
        view_state = ArchState.initial(program)
        jp = hot_jit(program, mode="view")
        assert jp.run(view_state, 1_000_000) == ref
        assert view_state == ref_state
        assert jp.compiled

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            JitProgram(assemble(HOT_FIXTURE), mode="turbo")


class TestStepLimitBoundary:
    def test_budget_fires_at_identical_instruction_every_cut(self):
        """Sweep the budget across the whole run: cuts that land inside a
        superblock must deopt to the per-step path and stop at exactly
        the decoded engine's instruction."""
        program = assemble(HOT_FIXTURE)
        total = decode(program).run(ArchState.initial(program), 10_000)[0]
        assert total > 100
        jp = hot_jit(program)
        for limit in range(1, total + 1, 7):
            decoded_state = ArchState.initial(program)
            with pytest.raises(StepLimitExceeded):
                decode(program).run(decoded_state, limit)
            jit_state = ArchState.initial(program)
            with pytest.raises(StepLimitExceeded):
                jp.run(jit_state, limit)
            assert jit_state == decoded_state

    def test_budget_one_past_halt_still_halts(self):
        program = assemble(HOT_FIXTURE)
        total, halted = decode(program).run(
            ArchState.initial(program), 10_000
        )
        assert halted
        state = ArchState.initial(program)
        assert hot_jit(program).run(state, total + 1) == (total, True)


class TestDeopt:
    def test_observer_deopts_to_per_step_and_matches(self):
        """An observer forces the decoded per-step loop: identical effect
        stream, and no region is ever compiled on that path."""
        program = assemble(HOT_FIXTURE)
        decoded_trace = []
        decoded_state = ArchState.initial(program)
        ref = decode(program).run(
            decoded_state, 1_000_000,
            observer=lambda pc, instr, effect, state: decoded_trace.append(
                (pc, effect.halted, effect.taken, effect.mem_addr)
            ),
        )
        jp = hot_jit(program)
        jit_trace = []
        jit_state = ArchState.initial(program)
        got = jp.run(
            jit_state, 1_000_000,
            observer=lambda pc, instr, effect, state: jit_trace.append(
                (pc, effect.halted, effect.taken, effect.mem_addr)
            ),
        )
        assert got == ref
        assert jit_state == decoded_state
        assert jit_trace == decoded_trace
        assert not jp.compiled, "observer runs must never compile regions"

    def test_non_leader_pcs_never_compile(self):
        program = assemble(HOT_FIXTURE)
        jp = hot_jit(program)
        jp.run(ArchState.initial(program), 1_000_000)
        for pc in range(len(program.code)):
            if pc not in jp.leaders:
                for _ in range(jp.threshold + 1):
                    assert jp.region_for(pc) is None

    def test_cold_code_stays_uncompiled_below_threshold(self):
        program = assemble(HOT_FIXTURE)
        jp = JitProgram(program, threshold=1_000_000, persist=False)
        state = ArchState.initial(program)
        ref_state = ArchState.initial(program)
        assert jp.run(state, 1_000_000) == decode(program).run(
            ref_state, 1_000_000
        )
        assert state == ref_state
        assert not jp.compiled


class TestDifferentialRandom:
    @settings(max_examples=40, deadline=None)
    @given(terminating_programs())
    def test_random_programs_equivalent(self, program):
        assert_jit_equivalent(program)

    @settings(max_examples=15, deadline=None)
    @given(terminating_programs())
    def test_random_programs_equivalent_in_view_mode(self, program):
        ref_state = ArchState.initial(program)
        ref = decode(program).run(ref_state, 1_000_000)
        state = ArchState.initial(program)
        assert hot_jit(program, mode="view").run(state, 1_000_000) == ref
        assert state == ref_state

    @settings(max_examples=15, deadline=None)
    @given(terminating_programs())
    def test_random_step_limit_cuts_identical(self, program):
        total, halted = decode(program).run(
            ArchState.initial(program), 1_000_000
        )
        assert halted
        jp = hot_jit(program)
        cuts = sorted({1, 2, 3, max(1, total // 3), max(1, total - 1), total})
        for limit in cuts:
            decoded_state = ArchState.initial(program)
            jit_state = ArchState.initial(program)
            if limit >= total:
                assert jp.run(jit_state, limit + 1) == (total, True)
                continue
            with pytest.raises(StepLimitExceeded):
                decode(program).run(decoded_state, limit)
            with pytest.raises(StepLimitExceeded):
                jp.run(jit_state, limit)
            assert jit_state == decoded_state


class TestRegionMetadata:
    def test_regions_round_trip_their_trace_and_source(self):
        """JIT002's invariant: every compiled region's metadata must be
        re-derivable from the program — same trace, same source."""
        program = assemble(HOT_FIXTURE)
        jp = hot_jit(program)
        jp.run(ArchState.initial(program), 1_000_000)
        assert jp.compiled
        for entry, region in jp.compiled.items():
            assert region.entry == entry
            assert entry in jp.leaders
            pcs, taken = jp.trace(entry)
            assert region.pcs == pcs
            assert region.taken == taken
            assert region.linear_len == len(region.pcs)
            assert region.source == jp.generate_source(entry)
            assert region.sources == jp.generate_sources(entry)
            assert region.mode == jp.mode

    def test_generate_source_is_deterministic(self):
        program = assemble(HOT_FIXTURE)
        a, b = hot_jit(program), hot_jit(program)
        for entry in sorted(a.leaders):
            assert a.generate_source(entry) == b.generate_source(entry)

    def test_block_leaders_cover_entry_and_targets(self):
        program = assemble(HOT_FIXTURE)
        leaders = block_leaders(program)
        assert program.entry in leaders
        assert 0 in leaders
        for pc, instr in enumerate(program.code):
            target = instr.target
            if instr.op.name != "FORK" and isinstance(target, int):
                if 0 <= target < len(program.code):
                    assert target in leaders
            if instr.is_terminator and pc + 1 < len(program.code):
                assert pc + 1 in leaders


#: Two regions bouncing through an always-taken branch: the canonical
#: link-promotion shape.  The branch at the end of the ``loop`` block is
#: taken on every iteration, so the loop→hot exit transits consecutively
#: and fuses; the fall-through ``addi r2, r2, 999`` is dead code the
#: fused trace skips entirely.
LINK_FIXTURE = """
        .text
main:   li r1, 300
        li r2, 0
loop:   addi r2, r2, 1
        bne r1, r0, hot
        addi r2, r2, 999
hot:    addi r1, r1, -1
        bne r1, r0, loop
        halt
"""

#: A rarely-taken branch (1 in 64 iterations): with a link threshold of
#: one, the first taken occurrence fuses loop+rare — and then the
#: inverted guard misses 63 times out of 64, so link health must tear
#: the fusion back down (demotion) instead of paying the guard-exit
#: dispatch forever.
FALL_BIASED_FIXTURE = """
        .text
main:   li r1, 500
        li r2, 0
loop:   andi r3, r1, 63
        beq r3, r0, rare
        addi r1, r1, -1
        bne r1, r0, loop
        halt
rare:   addi r2, r2, 1
        addi r1, r1, -1
        bne r1, r0, loop
        halt
"""


class TestSuperblockLinking:
    def test_hot_exit_promotes_into_fused_region(self):
        """Consecutive same-target transits fuse the target's trace into
        the source region — and the fused run stays bit-identical."""
        program = assemble(LINK_FIXTURE)
        ref_state = ArchState.initial(program)
        ref = decode(program).run(ref_state, 100_000)
        jp = JitProgram(program, threshold=1, persist=False)
        state = ArchState.initial(program)
        assert jp.run(state, 100_000) == ref
        assert state == ref_state
        assert jp.stats["link_transits"] > 0
        assert jp.stats["link_promotions"] >= 1
        assert jp.stats["fused_regions"] >= 1
        fused = [r for r in jp.compiled.values() if r.links]
        assert fused
        for region in fused:
            for target in region.links:
                assert target in region.pcs
            assert region.taken, "a fused trace follows at least one branch"

    def test_fall_biased_link_is_demoted(self):
        """An unhealthy link (guard misses outgrowing internal loop
        passes) is torn down, never re-promoted, and the run stays
        bit-identical through promote, demote, and recompile."""
        program = assemble(FALL_BIASED_FIXTURE)
        ref_state = ArchState.initial(program)
        ref = decode(program).run(ref_state, 100_000)
        jp = JitProgram(
            program, threshold=1, persist=False, link_threshold=1
        )
        state = ArchState.initial(program)
        assert jp.run(state, 100_000) == ref
        assert state == ref_state
        assert jp.stats["link_promotions"] >= 1
        assert jp.stats["link_demotions"] >= 1
        loop_entry, rare_entry = 2, 7
        # The unhealthy pair specifically is gone and blacklisted (no
        # promotion flip-flopping); other, healthy fusions may remain.
        assert rare_entry not in jp.links.get(loop_entry, set())
        assert (loop_entry, rare_entry) in jp._no_extend

    def test_invalidate_mid_run_tears_links_down_safely(self):
        """Forced deopt while a linked superblock is hot: invalidate the
        fused region mid-run, resume on the torn-down cache, and reach
        the identical final state."""
        program = assemble(LINK_FIXTURE)
        ref_state = ArchState.initial(program)
        total, halted = decode(program).run(ref_state, 100_000)
        assert halted
        jp = JitProgram(
            program, threshold=1, persist=False, link_threshold=1
        )
        state = ArchState.initial(program)
        with pytest.raises(StepLimitExceeded):
            jp.run(state, total // 2)
        assert jp.stats["link_promotions"] >= 1
        fused = [e for e, r in jp.compiled.items() if r.links]
        assert fused
        for entry in fused:
            jp.invalidate(entry)
        assert jp.stats["fused_regions"] == 0
        resumed_steps, resumed_halt = jp.run(state, 100_000)
        assert resumed_halt
        assert resumed_steps == total - total // 2
        assert state == ref_state

    def test_trace_with_links_follows_the_promoted_branch(self):
        program = assemble(LINK_FIXTURE)
        jp = JitProgram(program, threshold=1, persist=False)
        loop_entry = 2  # first pc of the ``loop`` block
        plain_pcs, plain_taken = jp.trace(loop_entry)
        assert not plain_taken
        hot_entry = 5  # first pc of the ``hot`` block
        fused_pcs, fused_taken = jp.trace(
            loop_entry, frozenset({hot_entry})
        )
        assert hot_entry in fused_pcs
        assert fused_taken
        # Dead fall-through of the followed branch is not in the trace.
        assert 4 not in fused_pcs


class TestPersistentCodeCache:
    def test_second_jit_program_reuses_stored_sources(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        program = assemble(HOT_FIXTURE)
        first = JitProgram(program, threshold=1, persist=True)
        ref_state = ArchState.initial(program)
        ref = first.run(ref_state, 1_000_000)
        assert first.compiled

        # A fresh Program object with the same content (as a worker
        # process would unpickle) must come up warm: regions compiled
        # before a single instruction runs, from the stored sources.
        twin = pickle.loads(pickle.dumps(program))
        assert "_jit_cache" not in twin.__dict__
        second = JitProgram(twin, threshold=1_000_000, persist=True)
        assert set(second.compiled) == set(first.compiled)
        for entry, region in second.compiled.items():
            assert region.source == first.compiled[entry].source
            assert region.pcs == first.compiled[entry].pcs

        twin_state = ArchState.initial(twin)
        assert second.run(twin_state, 1_000_000) == ref
        assert twin_state == ref_state

    def test_cache_off_disables_persistence(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", "off")
        program = assemble(HOT_FIXTURE)
        first = JitProgram(program, threshold=1, persist=True)
        first.run(ArchState.initial(program), 1_000_000)
        assert first.compiled
        second = JitProgram(
            pickle.loads(pickle.dumps(program)),
            threshold=1_000_000, persist=True,
        )
        assert not second.compiled

    def test_cache_key_separates_mode_content_and_schema(self, monkeypatch):
        program = assemble(HOT_FIXTURE)
        other = assemble(HOT_FIXTURE.replace("li r1, 40", "li r1, 41"))
        key = jit_cache_key(program, "arch")
        assert key != jit_cache_key(program, "view")
        assert key != jit_cache_key(other, "arch")
        assert key == jit_cache_key(
            pickle.loads(pickle.dumps(program)), "arch"
        )  # content-addressed: object identity is irrelevant
        monkeypatch.setattr(jit_mod, "JIT_SCHEMA", jit_mod.JIT_SCHEMA + 1)
        assert key != jit_cache_key(program, "arch")

    def test_corrupt_cache_entry_is_ignored(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", str(tmp_path))
        program = assemble(HOT_FIXTURE)
        from repro.experiments import cache

        cache.store(
            "jitcode", jit_cache_key(program, "arch"),
            {0: {"source": "def _region_0(:\n", "pcs": [0]}},
        )
        jp = JitProgram(program, threshold=1, persist=True)
        assert not jp.compiled  # the broken source was skipped
        assert_jit_equivalent(program)


class TestJitForCache:
    def test_cached_per_program_identity_and_mode(self):
        program = assemble(HOT_FIXTURE)
        assert jit_for(program) is jit_for(program)
        assert jit_for(program, "view") is jit_for(program, "view")
        assert jit_for(program) is not jit_for(program, "view")
        twin = assemble(HOT_FIXTURE)
        assert jit_for(twin) is not jit_for(program)

    def test_pickle_excludes_jit_cache(self):
        program = assemble(HOT_FIXTURE)
        jit_for(program)
        revived = pickle.loads(pickle.dumps(program))
        assert "_jit_cache" not in revived.__dict__
        assert revived == program


class TestExecTierPlumbing:
    def test_resolve_defaults_to_decoded(self, monkeypatch):
        monkeypatch.delenv("REPRO_EXEC", raising=False)
        assert resolve_exec_tier() == "decoded"

    def test_resolve_reads_env_with_normalization(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "  JIT ")
        assert resolve_exec_tier() == "jit"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "jit")
        assert resolve_exec_tier("oracle") == "oracle"

    def test_unknown_tier_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC", "warp")
        with pytest.raises(ValueError):
            resolve_exec_tier()
        with pytest.raises(ValueError):
            resolve_exec_tier("turbo")

    @pytest.mark.parametrize("tier", EXEC_TIERS)
    def test_interpreter_run_identical_under_every_tier(
        self, monkeypatch, tier
    ):
        program = assemble(HOT_FIXTURE)
        monkeypatch.delenv("REPRO_EXEC", raising=False)
        ref_state = ArchState.initial(program)
        ref = run(program, ref_state, max_steps=1_000_000)
        monkeypatch.setenv("REPRO_EXEC", tier)
        state = ArchState.initial(program)
        result = run(program, state, max_steps=1_000_000)
        assert (result.steps, result.halted) == (ref.steps, ref.halted)
        assert state == ref_state


class TestZeroRegisterFolding:
    def test_zero_writes_folded_in_generated_code(self):
        program = assemble(
            ".text\nmain: li r1, 64\nloop: add r0, r1, r1\n lw r0, 0(r1)\n"
            " li r0, 9\n mov r0, r1\n addi r1, r1, -1\n"
            " bne r1, r0, loop\n halt\n"
        )
        jp = assert_jit_equivalent(program)
        assert jp.compiled
        state = ArchState.initial(program)
        jp.run(state, 1_000_000)
        assert state.read_reg(0) == 0
