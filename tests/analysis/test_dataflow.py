"""Tests for the abstract-interpretation dataflow framework.

Unit tests pin the solver on hand-built programs (forward and backward
directions, widening termination); the hypothesis section fuzzes the
shipped domains' soundness obligation — every concretely reachable
register state is contained in the abstract in-state — on random
terminating programs, which is exactly what the ``DF002`` lint check
runs on the workload suite.
"""

import pytest
from hypothesis import given, settings

from repro.analysis.cfg import build_cfg
from repro.analysis.checker import Severity, check_dataflow
from repro.analysis.dataflow import (
    INT64_MAX,
    TOP_RANGE,
    UNKNOWN,
    AbstractDomain,
    ConstantDomain,
    IntervalDomain,
    TaintDomain,
    distill_write_taint,
    is_fixpoint,
    solve,
)
from repro.analysis.liveness import compute_liveness
from repro.isa.asm import assemble
from repro.isa.registers import NUM_REGS, ZERO

from tests.strategies import terminating_programs

DIAMOND_SAME = """
main:   li r1, 1
        beq r1, zero, left
right:  li r2, 7
        j join
left:   li r2, 7
join:   halt
"""

DIAMOND_DIFF = """
main:   li r1, 1
        beq r1, zero, left
right:  li r2, 7
        j join
left:   li r2, 9
join:   halt
"""

COUNTING_LOOP = """
main:   li r1, 0
loop:   addi r1, r1, 1
        slti r2, r1, 10
        bne r2, zero, loop
        halt
"""

STRAIGHT = """
main:   li r1, 5
        addi r2, r1, 3
        mul r3, r2, r2
        halt
"""


def _entry_of(cfg, label_pc):
    return cfg.block_at(label_pc).index


class TestConstantDomain:
    def test_straightline_folds_exactly(self):
        program = assemble(STRAIGHT)
        cfg = build_cfg(program)
        solution = solve(cfg, ConstantDomain())
        # state immediately before the halt
        state = solution.state_before(3)
        assert state[1] == 5
        assert state[2] == 8
        assert state[3] == 64

    def test_agreeing_join_stays_constant(self):
        program = assemble(DIAMOND_SAME)
        cfg = build_cfg(program)
        solution = solve(cfg, ConstantDomain())
        join_block = cfg.block_at(len(program.code) - 1)
        assert solution.block_in[join_block.index][2] == 7

    def test_disagreeing_join_goes_unknown(self):
        program = assemble(DIAMOND_DIFF)
        cfg = build_cfg(program)
        solution = solve(cfg, ConstantDomain())
        join_block = cfg.block_at(len(program.code) - 1)
        assert solution.block_in[join_block.index][2] is UNKNOWN

    def test_zero_register_is_always_zero(self):
        program = assemble(STRAIGHT)
        solution = solve(build_cfg(program), ConstantDomain())
        for state in solution.block_in.values():
            assert state[ZERO] == 0


class TestIntervalDomain:
    def test_loop_widens_and_terminates(self):
        program = assemble(COUNTING_LOOP)
        cfg = build_cfg(program)
        solution = solve(cfg, IntervalDomain())
        # The loop-carried counter grows without a static bound the
        # domain can see; widening jumps its upper end, after which the
        # +1 could overflow and the range conservatively goes to TOP.
        loop_block = cfg.block_at(1)
        lo, hi = solution.block_in[loop_block.index][1]
        assert hi == INT64_MAX
        # Comparison results stay in [0, 1] regardless of widening.
        state = solution.state_before(3)
        assert state[2] in ((0, 1), (1, 1), (0, 0))

    def test_straightline_is_exact(self):
        program = assemble(STRAIGHT)
        solution = solve(build_cfg(program), IntervalDomain())
        state = solution.state_before(3)
        assert state[1] == (5, 5)
        assert state[2] == (8, 8)
        assert state[3] == (64, 64)


class TestTaintDomain:
    def test_seed_propagates_through_arithmetic(self):
        program = assemble(STRAIGHT)
        cfg = build_cfg(program)
        solution = solve(cfg, TaintDomain(frozenset({1})))
        tainted, mem = solution.block_out[cfg.entry_block.index]
        # r1 is overwritten by an untainted li, then r2/r3 derive from it.
        assert 1 not in tainted
        assert 2 not in tainted and 3 not in tainted
        assert not mem

    def test_tainted_store_taints_memory(self):
        program = assemble("""
main:   li r2, 100
        sw r1, (r2)
        lw r3, (r2)
        halt
""")
        cfg = build_cfg(program)
        solution = solve(cfg, TaintDomain(frozenset({1})))
        tainted, mem = solution.block_out[cfg.entry_block.index]
        assert mem
        assert 3 in tainted

    def test_distill_write_taint_seeds_from_distilled_defs(self):
        program = assemble(STRAIGHT)
        distilled = assemble("main:  li r9, 1\n        halt")
        solution = distill_write_taint(build_cfg(program), distilled)
        assert solution.domain.seed_regs == frozenset({9})


class _LiveRegs(AbstractDomain):
    """Backward liveness as a dataflow domain (solver direction test)."""

    direction = "backward"

    def __init__(self, program):
        self.code = program.code

    def initial(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, state, pc, meta):
        instr = self.code[pc]
        return (state - instr.defs()) | (instr.uses() - {ZERO})


class TestBackwardDirection:
    @pytest.mark.parametrize("source", [DIAMOND_SAME, COUNTING_LOOP])
    def test_backward_solution_matches_liveness(self, source):
        program = assemble(source)
        cfg = build_cfg(program)
        liveness = compute_liveness(cfg)
        solution = solve(cfg, _LiveRegs(program))
        # For a backward problem, block_out holds the state after the
        # whole block transferred — i.e. liveness at block entry.
        for block in cfg.blocks:
            assert solution.block_out[block.index] == (
                liveness.block_live_in(block.index)
            )

    def test_backward_solution_is_fixpoint(self):
        program = assemble(COUNTING_LOOP)
        solution = solve(build_cfg(program), _LiveRegs(program))
        assert is_fixpoint(solution)


class TestFixpointCheck:
    def test_solver_output_is_fixpoint(self):
        for source in (DIAMOND_SAME, DIAMOND_DIFF, COUNTING_LOOP, STRAIGHT):
            program = assemble(source)
            for domain in (ConstantDomain(), IntervalDomain()):
                assert is_fixpoint(solve(build_cfg(program), domain))

    def test_mutated_solution_is_not_fixpoint(self):
        """Seeded mutation behind DF001."""
        program = assemble(COUNTING_LOOP)
        cfg = build_cfg(program)
        solution = solve(cfg, ConstantDomain())
        loop_block = cfg.block_at(1)
        mutated = list(solution.block_in[loop_block.index])
        mutated[1] = 123  # claim the loop counter is the constant 123
        solution.block_in[loop_block.index] = tuple(mutated)
        assert not is_fixpoint(solution)


class TestCheckDataflow:
    def test_clean_on_hand_programs(self):
        for source in (DIAMOND_SAME, DIAMOND_DIFF, COUNTING_LOOP, STRAIGHT):
            report = check_dataflow(assemble(source))
            assert report.ok, report.render()

    def test_df002_catches_wrong_claim(self, monkeypatch):
        """Seeded mutation behind DF002: a fixpoint that lies.

        A single-block program's entry state has no in-edges for
        ``is_fixpoint`` to re-check, so a wrong-but-propagated claim
        survives DF001 — only the concrete run (DF002) can refute it.
        """
        import repro.analysis.dataflow as dataflow

        program = assemble("main:   li r1, 5\n        halt")
        real_solve = dataflow.solve

        def lying_solve(cfg, domain, widen_after=3):
            solution = real_solve(cfg, domain, widen_after)
            if isinstance(domain, ConstantDomain):
                for index, state in solution.block_in.items():
                    wrong = list(state)
                    wrong[2] = 42  # r2 is 0 on every execution
                    solution.block_in[index] = tuple(wrong)
                    solution.block_out[index] = domain.transfer(
                        tuple(wrong), 0, dataflow.decode(cfg.program).meta[0]
                    )
            return solution

        monkeypatch.setattr(dataflow, "solve", lying_solve)
        report = check_dataflow(program)
        ids = [f.check_id for f in report.errors]
        assert "DF002" in ids

    @settings(max_examples=40, deadline=None)
    @given(program=terminating_programs())
    def test_domains_sound_on_random_programs(self, program):
        """Hypothesis: abstract states contain the concrete oracle run."""
        report = check_dataflow(program, max_steps=3_000)
        assert report.ok, report.render()
