"""Tests for natural-loop detection."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.loops import analyze_loops
from repro.isa.asm import assemble

SIMPLE = """
main:   li r1, 3
loop:   addi r1, r1, -1
        bne r1, zero, loop
        halt
"""

NESTED = """
main:   li r1, 2
outer:  li r2, 2
inner:  addi r2, r2, -1
        bne r2, zero, inner
        addi r1, r1, -1
        bne r1, zero, outer
        halt
"""

TWO_LOOPS = """
main:   li r1, 2
a:      addi r1, r1, -1
        bne r1, zero, a
        li r2, 2
b:      addi r2, r2, -1
        bne r2, zero, b
        halt
"""


class TestSimpleLoop:
    def test_single_loop_found(self):
        cfg = build_cfg(assemble(SIMPLE))
        forest = analyze_loops(cfg)
        assert len(forest.loops) == 1
        loop = forest.loops[0]
        header_block = cfg.block_starting_at(1)
        assert loop.header == header_block.index
        assert loop.body == frozenset({header_block.index})
        assert loop.depth == 1

    def test_back_edge_recorded(self):
        cfg = build_cfg(assemble(SIMPLE))
        forest = analyze_loops(cfg)
        (edge,) = forest.loops[0].back_edges
        assert edge == (forest.loops[0].header, forest.loops[0].header)

    def test_no_loops_in_straightline(self):
        cfg = build_cfg(assemble("nop\nnop\nhalt"))
        assert analyze_loops(cfg).loops == []


class TestNestedLoops:
    def test_depths(self):
        cfg = build_cfg(assemble(NESTED))
        forest = analyze_loops(cfg)
        assert len(forest.loops) == 2
        outer_header = cfg.block_starting_at(1).index
        inner_header = cfg.block_starting_at(2).index
        outer = forest.loop_with_header(outer_header)
        inner = forest.loop_with_header(inner_header)
        assert outer.depth == 1
        assert inner.depth == 2
        assert inner.body < outer.body

    def test_depth_of_block(self):
        cfg = build_cfg(assemble(NESTED))
        forest = analyze_loops(cfg)
        inner_header = cfg.block_starting_at(2).index
        entry = cfg.entry_block.index
        assert forest.depth_of_block(inner_header) == 2
        assert forest.depth_of_block(entry) == 0

    def test_innermost_loop_of(self):
        cfg = build_cfg(assemble(NESTED))
        forest = analyze_loops(cfg)
        inner_header = cfg.block_starting_at(2).index
        assert forest.innermost_loop_of(inner_header).header == inner_header
        with pytest.raises(KeyError):
            forest.innermost_loop_of(cfg.entry_block.index)


class TestDisjointLoops:
    def test_two_separate_loops(self):
        cfg = build_cfg(assemble(TWO_LOOPS))
        forest = analyze_loops(cfg)
        assert len(forest.loops) == 2
        assert all(loop.depth == 1 for loop in forest.loops)
        bodies = [loop.body for loop in forest.loops]
        assert bodies[0].isdisjoint(bodies[1])

    def test_headers_property(self):
        cfg = build_cfg(assemble(TWO_LOOPS))
        forest = analyze_loops(cfg)
        assert len(forest.headers) == 2
        with pytest.raises(KeyError):
            forest.loop_with_header(-1)
