"""Tests for control-flow graph construction."""

import pytest
from hypothesis import given, settings

from repro.analysis.cfg import build_cfg
from repro.isa.asm import assemble

from tests.strategies import terminating_programs

DIAMOND = """
main:   li r1, 1
        beq r1, zero, left
right:  addi r2, r2, 1
        j join
left:   addi r2, r2, 2
join:   halt
"""

LOOPY = """
main:   li r1, 3
loop:   addi r1, r1, -1
        bne r1, zero, loop
        halt
"""

CALLS = """
main:   jal fn
        jal fn
        halt
fn:     addi r1, r1, 1
        jr ra
"""


class TestBlockPartition:
    def test_diamond_blocks(self):
        cfg = build_cfg(assemble(DIAMOND))
        starts = sorted(block.start for block in cfg.blocks)
        assert starts == [0, 2, 4, 5]

    def test_every_pc_in_exactly_one_block(self):
        program = assemble(DIAMOND)
        cfg = build_cfg(program)
        covered = sorted(
            pc for block in cfg.blocks for pc in block.pcs
        )
        assert covered == list(range(len(program.code)))
        for block in cfg.blocks:
            for pc in block.pcs:
                assert cfg.block_of_pc[pc] == block.index

    def test_entry_block(self):
        cfg = build_cfg(assemble(DIAMOND))
        assert cfg.entry_block.start == 0

    def test_block_starting_at(self):
        cfg = build_cfg(assemble(DIAMOND))
        assert cfg.block_starting_at(2).start == 2
        assert cfg.block_starting_at(3) is None  # mid-block pc


class TestEdges:
    def test_diamond_edges(self):
        cfg = build_cfg(assemble(DIAMOND))
        by_start = {b.start: b.index for b in cfg.blocks}
        edges = set(cfg.edge_list())
        assert (by_start[0], by_start[2]) in edges  # fallthrough to right
        assert (by_start[0], by_start[4]) in edges  # branch to left
        assert (by_start[2], by_start[5]) in edges  # j join
        assert (by_start[4], by_start[5]) in edges  # fallthrough
        halt_block = by_start[5]
        assert cfg.successors[halt_block] == []

    def test_loop_back_edge(self):
        cfg = build_cfg(assemble(LOOPY))
        loop_block = cfg.block_starting_at(1)
        assert loop_block.index in cfg.successors[loop_block.index]

    def test_predecessors_mirror_successors(self):
        cfg = build_cfg(assemble(DIAMOND))
        for src, dsts in cfg.successors.items():
            for dst in dsts:
                assert src in cfg.predecessors[dst]

    def test_jal_edges_to_target(self):
        cfg = build_cfg(assemble(CALLS))
        entry = cfg.entry_block
        fn_block = cfg.block_starting_at(3)
        assert fn_block.index in cfg.successors[entry.index]

    def test_jr_edges_to_all_return_sites(self):
        cfg = build_cfg(assemble(CALLS))
        ret_block = cfg.block_at(4)
        succ_starts = {b.start for b in cfg.succ_blocks(ret_block)}
        assert succ_starts == {1, 2}  # both instructions after the two jals

    def test_fork_creates_no_edges(self):
        program = assemble("fork 999\nhalt")
        cfg = build_cfg(program)
        assert len(cfg.blocks) == 1  # fork target did not become a leader


class TestReachability:
    def test_unreachable_block_detected(self):
        program = assemble(
            """
            main:   j end
            dead:   addi r1, r1, 1
            end:    halt
            """
        )
        cfg = build_cfg(program)
        reachable = cfg.reachable_from_entry()
        dead = cfg.block_starting_at(1)
        assert dead.index not in reachable
        assert cfg.entry_block.index in reachable

    @given(terminating_programs())
    @settings(max_examples=20, deadline=None)
    def test_partition_invariant_random(self, program):
        cfg = build_cfg(program)
        covered = sorted(pc for block in cfg.blocks for pc in block.pcs)
        assert covered == list(range(len(program.code)))
        # Edge symmetry
        for src, dsts in cfg.successors.items():
            for dst in dsts:
                assert src in cfg.predecessors[dst]
