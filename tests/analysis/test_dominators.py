"""Tests for dominator computation."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dominators import DominatorTree
from repro.errors import AnalysisError
from repro.isa.asm import assemble

DIAMOND = """
main:   li r1, 1
        beq r1, zero, left
right:  addi r2, r2, 1
        j join
left:   addi r2, r2, 2
join:   halt
"""

NESTED = """
main:   li r1, 2
outer:  li r2, 2
inner:  addi r2, r2, -1
        bne r2, zero, inner
        addi r1, r1, -1
        bne r1, zero, outer
        halt
"""


def _cfg_and_tree(source):
    cfg = build_cfg(assemble(source))
    return cfg, DominatorTree(cfg)


class TestDiamond:
    def test_entry_dominates_everything(self):
        cfg, tree = _cfg_and_tree(DIAMOND)
        entry = cfg.entry_block.index
        for block in cfg.blocks:
            assert tree.dominates(entry, block.index)

    def test_sides_do_not_dominate_join(self):
        cfg, tree = _cfg_and_tree(DIAMOND)
        left = cfg.block_starting_at(4).index
        right = cfg.block_starting_at(2).index
        join = cfg.block_starting_at(5).index
        assert not tree.dominates(left, join)
        assert not tree.dominates(right, join)

    def test_join_idom_is_entry(self):
        cfg, tree = _cfg_and_tree(DIAMOND)
        join = cfg.block_starting_at(5).index
        assert tree.idom(join) == cfg.entry_block.index

    def test_entry_has_no_idom(self):
        cfg, tree = _cfg_and_tree(DIAMOND)
        assert tree.idom(cfg.entry_block.index) is None

    def test_dominates_is_reflexive(self):
        cfg, tree = _cfg_and_tree(DIAMOND)
        for block in cfg.blocks:
            assert tree.dominates(block.index, block.index)
            assert not tree.strictly_dominates(block.index, block.index)

    def test_dominators_of(self):
        cfg, tree = _cfg_and_tree(DIAMOND)
        join = cfg.block_starting_at(5).index
        entry = cfg.entry_block.index
        assert tree.dominators_of(join) == {entry, join}


class TestNestedLoops:
    def test_loop_headers_dominate_bodies(self):
        cfg, tree = _cfg_and_tree(NESTED)
        outer = cfg.block_starting_at(1).index
        inner = cfg.block_starting_at(2).index
        assert tree.dominates(outer, inner)
        assert not tree.dominates(inner, outer)

    def test_idom_chain(self):
        cfg, tree = _cfg_and_tree(NESTED)
        inner = cfg.block_starting_at(2).index
        outer = cfg.block_starting_at(1).index
        assert tree.idom(inner) == outer


class TestUnreachable:
    def test_unreachable_block_raises(self):
        cfg = build_cfg(
            assemble(
                """
                main:   j end
                dead:   nop
                end:    halt
                """
            )
        )
        tree = DominatorTree(cfg)
        dead = cfg.block_starting_at(1).index
        with pytest.raises(AnalysisError):
            tree.idom(dead)
        with pytest.raises(AnalysisError):
            tree.dominates(cfg.entry_block.index, dead)

    def test_reachable_excludes_dead(self):
        cfg = build_cfg(assemble("main: j end\ndead: nop\nend: halt"))
        tree = DominatorTree(cfg)
        dead = cfg.block_starting_at(1).index
        assert dead not in tree.reachable
