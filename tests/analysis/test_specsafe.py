"""Tests for the speculation-safety prover and its runtime wiring.

The acceptance spine: every registered workload gets at least one
PROVEN live-in cell, the three ``static_safety`` modes are bit-identical
with a nonzero skip count, and the differential check mode never trips
on an honest report — while a *fabricated* report claiming PROVEN on a
genuinely mispredicted cell is caught as a hard ``CheckFailure``
(the ``DF005`` seeded mutation).
"""

import dataclasses

import pytest

from repro.analysis.checker import check_safety_report, check_safety_runtime
from repro.analysis.specsafe import (
    CellClass,
    RegionSafety,
    SafetyReport,
    prove_safety,
)
from repro.config import DistillConfig, MsspConfig
from repro.distill.distiller import Distiller
from repro.errors import CheckFailure, MsspError, ReproError
from repro.experiments.harness import training_profile
from repro.isa.registers import NUM_REGS, ZERO
from repro.mssp.engine import MsspEngine
from repro.mssp.faults import corrupt_distilled, random_garbage_master
from repro.workloads import get_workload

from tests.workloads.test_suite import SMALL_SIZES


def _prepare(name):
    instance = get_workload(name).instance(SMALL_SIZES[name])
    distillation = Distiller(DistillConfig()).distill(
        instance.program, training_profile(instance)
    )
    return instance, distillation


def _prove(instance, distillation):
    return prove_safety(
        instance.program, distillation.distilled, distillation.pc_map
    )


class TestProver:
    @pytest.mark.parametrize("name", sorted(SMALL_SIZES))
    def test_every_workload_proves_at_least_one_cell(self, name):
        instance, distillation = _prepare(name)
        report = _prove(instance, distillation)
        assert not report.bailed, report.bail_reason
        assert report.total_proven >= 1

    @pytest.mark.parametrize("name", sorted(SMALL_SIZES))
    def test_report_shape_is_checker_clean(self, name):
        instance, distillation = _prepare(name)
        report = _prove(instance, distillation)
        shape = check_safety_report(
            instance.program, distillation.pc_map, report, subject=name
        )
        assert shape.ok, shape.render()

    def test_provenance_free_pc_map_bails(self):
        instance, distillation = _prepare("crc")
        stripped = dataclasses.replace(distillation.pc_map, provenance={})
        report = prove_safety(
            instance.program, distillation.distilled, stripped
        )
        assert report.bailed
        assert "provenance" in report.bail_reason
        # Bailing is sound: every live-in cell degrades to UNPROVEN.
        assert report.total_proven == 0
        assert set(report.regions) == set(distillation.pc_map.anchors)

    def test_garbage_master_bails(self):
        instance, _ = _prepare("crc")
        garbage, pc_map = random_garbage_master(instance.program, seed=3)
        report = prove_safety(instance.program, garbage, pc_map)
        assert report.bailed
        assert report.total_proven == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_corrupted_master_never_raises(self, seed):
        instance, distillation = _prepare("fib_memo")
        corrupted = corrupt_distilled(
            distillation.distilled, len(instance.program.code),
            seed=seed, severity=0.6,
        )
        # Must degrade (bail or weaker claims), never throw.
        report = prove_safety(
            instance.program, corrupted, distillation.pc_map
        )
        assert isinstance(report, SafetyReport)


class TestRuntimeModes:
    @pytest.mark.parametrize("name", sorted(SMALL_SIZES))
    def test_modes_bit_identical_with_nonzero_skips(self, name):
        instance, distillation = _prepare(name)
        results = {}
        for mode in ("off", "skip", "check"):
            config = MsspConfig(static_safety=mode)
            results[mode] = MsspEngine(
                instance.program, distillation, config=config
            ).run_and_check()
        assert results["skip"].counters.static_verify_skips > 0
        assert results["off"].final_state == results["skip"].final_state
        assert results["off"].final_state == results["check"].final_state
        # skip and check agree on every counter, including the skip
        # count (it is a pure function of each task's anchor).
        assert results["skip"].counters == results["check"].counters
        off = dataclasses.replace(
            results["off"].counters,
            static_verify_skips=results["skip"].counters.static_verify_skips,
        )
        assert off == results["skip"].counters

    @pytest.mark.parametrize("name", sorted(SMALL_SIZES))
    def test_check_mode_clean_on_honest_report(self, name):
        instance, distillation = _prepare(name)
        report = check_safety_runtime(instance.program, distillation)
        assert report.ok, report.render()

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("severity", (0.3, 1.0))
    def test_corrupted_master_check_mode_stays_sound(self, seed, severity):
        """Fault injection: PROVEN claims must survive a corrupted master.

        Whatever the corruption does — squash storms, traps, timeouts —
        a mismatch on a cell the prover still claims PROVEN would be an
        analysis soundness hole, surfaced as ``CheckFailure``.
        """
        instance, distillation = _prepare("hashlookup")
        corrupted = corrupt_distilled(
            distillation.distilled, len(instance.program.code),
            seed=seed, severity=severity,
        )
        config = MsspConfig(static_safety="check")
        try:
            MsspEngine(
                instance.program, (corrupted, distillation.pc_map),
                config=config,
            ).run_and_check()
        except CheckFailure as failure:
            pytest.fail(f"PROVEN cell mismatched under corruption: {failure}")
        except (MsspError, ReproError):
            pass  # squashes, traps and budget failures are legal here


def _all_proven(honest: SafetyReport) -> SafetyReport:
    """A fabricated report upgrading every classified cell to PROVEN."""
    regions = {
        anchor: RegionSafety(
            anchor=anchor,
            cells={reg: CellClass.PROVEN for reg in region.cells},
            mem_proven=region.mem_proven,
        )
        for anchor, region in honest.regions.items()
    }
    return SafetyReport(regions=regions)


class TestFabricatedReports:
    def test_unsound_proven_claim_raises_check_failure(self):
        # fib_memo genuinely mispredicts register live-ins at SMALL
        # sizes, so an all-PROVEN report must trip the cross-check.
        instance, distillation = _prepare("fib_memo")
        fabricated = _all_proven(_prove(instance, distillation))
        config = MsspConfig(static_safety="check")
        with pytest.raises(CheckFailure):
            MsspEngine(
                instance.program, distillation, config=config,
                safety_report=fabricated,
            ).run_and_check()

    def test_df005_reported_through_checker(self, monkeypatch):
        """Seeded mutation behind DF005."""
        import repro.mssp.engine as engine_module

        instance, distillation = _prepare("fib_memo")
        fabricated = _all_proven(_prove(instance, distillation))
        monkeypatch.setattr(
            engine_module, "prove_safety", lambda *a, **k: fabricated
        )
        report = check_safety_runtime(instance.program, distillation)
        ids = [f.check_id for f in report.errors]
        assert ids == ["DF005"]

    def test_df003_region_anchor_mismatch(self):
        """Seeded mutation behind DF003."""
        instance, distillation = _prepare("crc")
        honest = _prove(instance, distillation)
        regions = dict(honest.regions)
        dropped = max(regions)
        del regions[dropped]
        regions[10_000] = RegionSafety(anchor=10_000)
        mutated = SafetyReport(regions=regions)
        report = check_safety_report(
            instance.program, distillation.pc_map, mutated
        )
        ids = sorted(f.check_id for f in report.errors)
        assert ids == ["DF003", "DF003"]

    def test_df004_non_live_cell(self):
        """Seeded mutation behind DF004."""
        from repro.analysis.cfg import build_cfg
        from repro.analysis.liveness import compute_liveness

        instance, distillation = _prepare("crc")
        honest = _prove(instance, distillation)
        cfg = build_cfg(instance.program)
        liveness = compute_liveness(cfg)
        anchor = max(honest.regions)
        block = cfg.block_starting_at(anchor)
        live = liveness.block_live_in(block.index) - {ZERO}
        dead = next(
            reg for reg in range(1, NUM_REGS) if reg not in live
        )
        region = honest.regions[anchor]
        cells = dict(region.cells)
        cells[dead] = CellClass.PROVEN
        regions = dict(honest.regions)
        regions[anchor] = RegionSafety(
            anchor=anchor, cells=cells, mem_proven=region.mem_proven
        )
        report = check_safety_report(
            instance.program, distillation.pc_map, SafetyReport(regions=regions)
        )
        ids = [f.check_id for f in report.errors]
        assert ids == ["DF004"]
        assert f"r{dead}" in report.errors[0].message
