"""Tests for backward register liveness."""

from repro.analysis.cfg import build_cfg
from repro.analysis.liveness import compute_liveness
from repro.isa.asm import assemble

STRAIGHT = """
main:   li r1, 5
        addi r2, r1, 1
        add r3, r1, r2
        halt
"""

BRANCHED = """
main:   li r1, 1
        li r2, 2
        beq r1, zero, skip
        add r3, r2, r2      # uses r2 only on this path
skip:   add r4, r1, r1
        halt
"""

LOOP = """
main:   li r1, 3
loop:   addi r1, r1, -1
        bne r1, zero, loop
        halt
"""


class TestStraightLine:
    def test_nothing_live_at_exit_by_default(self):
        cfg = build_cfg(assemble(STRAIGHT))
        info = compute_liveness(cfg)
        halt_block = cfg.block_at(3)
        assert info.live_out[halt_block.index] == frozenset()

    def test_exit_live_propagates(self):
        cfg = build_cfg(assemble(STRAIGHT))
        info = compute_liveness(cfg, exit_live=frozenset({3}))
        entry = cfg.entry_block.index
        # r3 defined inside the block, so not live at entry.
        assert 3 not in info.live_in[entry]

    def test_live_after_each(self):
        program = assemble(STRAIGHT)
        cfg = build_cfg(program)
        info = compute_liveness(cfg, exit_live=frozenset({3}))
        block = cfg.entry_block
        after = info.live_after_each(block)
        # After li r1: r1 live (used by addi and add).
        assert 1 in after[0]
        # After addi r2: r1 and r2 both live (add uses them).
        assert {1, 2} <= after[1]
        # After add r3: only r3 (exit-live) remains.
        assert after[2] == frozenset({3})


class TestBranches:
    def test_use_on_one_path_is_live_at_fork(self):
        cfg = build_cfg(assemble(BRANCHED))
        info = compute_liveness(cfg)
        entry = cfg.entry_block.index
        # r2 is used in the fallthrough block, so live out of entry block.
        assert 2 in info.live_out[entry]

    def test_def_kills_liveness(self):
        cfg = build_cfg(assemble(BRANCHED))
        info = compute_liveness(cfg)
        # r3 and r4 are defined before any use: never live-in anywhere.
        for block in cfg.blocks:
            assert 3 not in info.live_in[block.index]
            assert 4 not in info.live_in[block.index]


class TestLoops:
    def test_loop_variable_live_around_back_edge(self):
        cfg = build_cfg(assemble(LOOP))
        info = compute_liveness(cfg)
        loop_block = cfg.block_starting_at(1)
        assert 1 in info.live_in[loop_block.index]
        assert 1 in info.live_out[loop_block.index]

    def test_r0_never_live(self):
        cfg = build_cfg(assemble(LOOP))
        info = compute_liveness(cfg, exit_live=frozenset({1}))
        for block in cfg.blocks:
            assert 0 not in info.live_in[block.index]
            assert 0 not in info.live_out[block.index]
