"""Tests for the static soundness checker (``repro.analysis.checker``).

The seeded-mutation tests are the checker's own acceptance suite: each
corrupts one artifact in one specific way (a branch target, a fork's
live-in set, a pc-map entry) and asserts the checker flags it with the
*right* check ID — not merely that it complains.
"""

import dataclasses
from pathlib import Path

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.checker import (
    APPROXIMATION_SQUASH_REASONS,
    CHECKS,
    SOUND_SQUASH_REASONS,
    Severity,
    check_code,
    check_decoded,
    check_distillation,
    check_ir,
    check_jit,
    check_program,
    check_runtime_events,
    check_runtime_execution,
    predicted_squash_reasons,
)
from repro.analysis.dominators import DominatorTree
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import find_loops
from repro.config import DistillConfig
from repro.distill.distiller import PASS_INVARIANTS, Distiller
from repro.distill.ir import lift_to_ir
from repro.distill.passes.fork_placement import run_fork_placement
from repro.distill.pc_map import PcMap
from repro.errors import CheckFailure
from repro.isa.asm import assemble
from repro.isa.instructions import Instruction, Opcode
from repro.isa.registers import ZERO
from repro.profiling import profile_program
from tests.distill.conftest import RICH_SOURCE


@pytest.fixture
def rich_program():
    return assemble(RICH_SOURCE, name="rich")


@pytest.fixture
def rich_profile(rich_program):
    return profile_program(rich_program)


def error_ids(report):
    return {f.check_id for f in report.errors}


def warning_ids(report):
    return {f.check_id for f in report.warnings}


# -- layer 1: flat programs -------------------------------------------------


class TestCheckProgram:
    def test_clean_program_has_no_errors(self, rich_program):
        report = check_program(rich_program)
        assert report.ok
        assert not report.errors

    def test_empty_code_is_prog003(self):
        report = check_code([])
        assert error_ids(report) == {"PROG003"}

    def test_entry_out_of_range_is_prog001(self):
        code = [Instruction(op=Opcode.HALT)]
        report = check_code(code, entry=5)
        assert error_ids(report) == {"PROG001"}

    def test_corrupt_branch_target_is_prog001(self, rich_program):
        # Seeded mutation: retarget one conditional branch past the text.
        code = list(rich_program.code)
        branch_pc = next(
            pc for pc, i in enumerate(code) if i.is_branch
        )
        code[branch_pc] = code[branch_pc].with_target(len(code) + 40)
        report = check_code(code, rich_program.entry)
        assert "PROG001" in error_ids(report)
        assert any(
            f.check_id == "PROG001" and f.pc == branch_pc
            for f in report.errors
        )

    def test_symbolic_target_is_prog002(self):
        code = [
            Instruction(op=Opcode.J, target="label"),
            Instruction(op=Opcode.HALT),
        ]
        report = check_code(code)
        assert "PROG002" in error_ids(report)

    def test_fall_off_end_is_prog003(self):
        code = [Instruction(op=Opcode.ADDI, rd=1, rs=1, imm=1)]
        report = check_code(code)
        assert "PROG003" in error_ids(report)

    def test_may_undefined_read_is_prog004_warning(self):
        code = [
            Instruction(op=Opcode.ADD, rd=1, rs=2, rt=3),
            Instruction(op=Opcode.HALT),
        ]
        report = check_code(code)
        assert report.ok  # warnings only
        assert warning_ids(report) == {"PROG004"}
        flagged = {f.pc for f in report.warnings}
        assert flagged == {0}

    def test_defined_on_every_path_is_clean(self):
        # r1 is written on both branch arms before the merged read.
        code = [
            Instruction(op=Opcode.BEQ, rs=ZERO, rt=ZERO, target=3),
            Instruction(op=Opcode.LI, rd=1, imm=1),
            Instruction(op=Opcode.J, target=4),
            Instruction(op=Opcode.LI, rd=1, imm=2),
            Instruction(op=Opcode.ADD, rd=2, rs=1, rt=1),
            Instruction(op=Opcode.HALT),
        ]
        report = check_code(code)
        assert not report.findings

    def test_unreachable_code_is_prog005_warning(self):
        code = [
            Instruction(op=Opcode.HALT),
            Instruction(op=Opcode.ADDI, rd=1, rs=1, imm=1),
            Instruction(op=Opcode.ADDI, rd=1, rs=1, imm=1),
        ]
        report = check_code(code)
        assert report.ok
        assert "PROG005" in warning_ids(report)
        dead = next(f for f in report.warnings if f.check_id == "PROG005")
        assert dead.pc == 1 and "pcs 1-2" in dead.message

    def test_jal_at_last_pc_is_prog006(self):
        code = [Instruction(op=Opcode.JAL, target=0)]
        report = check_code(code)
        assert "PROG006" in error_ids(report)

    def test_no_reachable_halt_is_prog007_warning(self):
        code = [Instruction(op=Opcode.J, target=0)]
        report = check_code(code)
        assert report.ok
        assert "PROG007" in warning_ids(report)

    def test_blind_jr_is_prog008_warning(self):
        code = [Instruction(op=Opcode.JR, rs=1), Instruction(op=Opcode.HALT)]
        report = check_code(code)
        assert "PROG008" in warning_ids(report)
        # A jr table entry supplies the landing site: warning disappears.
        report = check_code(code, jr_targets=[1])
        assert "PROG008" not in warning_ids(report)

    def test_render_mentions_check_id(self):
        report = check_code([Instruction(op=Opcode.J, target="x")])
        text = report.render()
        assert "PROG002" in text and "FAIL" in text


# -- layer 2: the distiller IR ---------------------------------------------


def _ir_with_forks(program, profile, target_task_size=40):
    cfg = build_cfg(program)
    domtree = DominatorTree(cfg)
    loops = find_loops(cfg, domtree)
    liveness = compute_liveness(cfg)
    ir = lift_to_ir(program, cfg)
    config = dataclasses.replace(
        DistillConfig(), target_task_size=target_task_size
    )
    stats = run_fork_placement(ir, profile, cfg, loops, liveness, config)
    assert stats.anchors, "fixture program must earn at least one anchor"
    return ir, cfg, liveness


def _find_fork(ir):
    for block in ir.blocks:
        for dinstr in block.instrs:
            if dinstr.instr.op is Opcode.FORK:
                return block, dinstr
    raise AssertionError("no fork in IR")


class TestCheckIr:
    def test_lifted_ir_is_clean(self, rich_program):
        ir = lift_to_ir(rich_program, build_cfg(rich_program))
        report = check_ir(ir)
        assert report.ok

    def test_ir_with_forks_is_clean(self, rich_program, rich_profile):
        ir, _, _ = _ir_with_forks(rich_program, rich_profile)
        assert check_ir(ir, pass_name="fork_placement").ok

    def test_duplicate_block_name_is_ir001(self, rich_program):
        ir = lift_to_ir(rich_program, build_cfg(rich_program))
        ir.blocks.append(ir.blocks[0])
        assert "IR001" in error_ids(check_ir(ir))

    def test_missing_entry_is_ir002(self, rich_program):
        ir = lift_to_ir(rich_program, build_cfg(rich_program))
        ir.entry_name = "nonexistent"
        assert "IR002" in error_ids(check_ir(ir))

    def test_dangling_fallthrough_is_ir003(self, rich_program):
        ir = lift_to_ir(rich_program, build_cfg(rich_program))
        victim = next(b for b in ir.blocks if b.fallthrough is not None)
        victim.fallthrough = "__nope__"
        report = check_ir(ir)
        assert "IR003" in error_ids(report)
        assert any(f.block == victim.name for f in report.errors)

    def test_corrupt_orig_pc_is_ir005(self, rich_program):
        ir = lift_to_ir(rich_program, build_cfg(rich_program))
        block = next(b for b in ir.blocks if b.instrs)
        block.instrs[0].orig_pc = len(rich_program.code) + 7
        assert "IR005" in error_ids(check_ir(ir))

    def test_dropped_fork_live_in_is_ir006(self, rich_program, rich_profile):
        # Seeded mutation: strip one anchor-live register from a fork's
        # use set — the exact bug that would let DCE delete a live-in
        # producer the slaves depend on.
        ir, cfg, liveness = _ir_with_forks(rich_program, rich_profile)
        block, fork = _find_fork(ir)
        anchor = int(fork.instr.target)
        required = {
            reg
            for reg in liveness.live_in[cfg.block_of_pc[anchor]]
            if reg != ZERO
        }
        assert required, "anchor must have live-in registers"
        dropped = sorted(required)[0]
        fork.uses_override = frozenset(fork.uses_override - {dropped})
        report = check_ir(ir)
        assert "IR006" in error_ids(report)
        finding = next(f for f in report.errors if f.check_id == "IR006")
        assert f"r{dropped}" in finding.message
        assert finding.orig_pc == anchor

    def test_missing_fork_use_set_is_ir006(self, rich_program, rich_profile):
        ir, _, _ = _ir_with_forks(rich_program, rich_profile)
        _, fork = _find_fork(ir)
        fork.uses_override = None
        assert "IR006" in error_ids(check_ir(ir))

    def test_duplicate_anchor_is_ir009(self, rich_program, rich_profile):
        ir, _, _ = _ir_with_forks(rich_program, rich_profile)
        block, fork = _find_fork(ir)
        block.instrs.insert(0, fork)
        assert "IR009" in error_ids(check_ir(ir))

    def test_non_leader_anchor_is_ir010(self, rich_program, rich_profile):
        ir, cfg, _ = _ir_with_forks(rich_program, rich_profile)
        _, fork = _find_fork(ir)
        anchor = int(fork.instr.target)
        mid_block = anchor + 1
        assert cfg.block_at(mid_block).start != mid_block
        fork.instr = fork.instr.with_target(mid_block)
        assert "IR010" in error_ids(check_ir(ir))


# -- layer 3: the distilled artifact and its pc map -------------------------


@pytest.fixture
def rich_distillation(rich_program, rich_profile):
    return Distiller().distill(rich_program, rich_profile)


def _replace_map(pc_map, **kwargs):
    return PcMap(
        resume=kwargs.get("resume", dict(pc_map.resume)),
        entry_orig=kwargs.get("entry_orig", pc_map.entry_orig),
        arrival=kwargs.get("arrival", dict(pc_map.arrival)),
        jr_table=kwargs.get("jr_table", dict(pc_map.jr_table)),
    )


def _an_anchor(distillation):
    """An anchor that is a real fork site (not the entry fallback)."""
    return sorted(distillation.pc_map.arrival)[0]


class TestCheckDistillation:
    def test_real_distillation_is_clean(self, rich_program, rich_distillation):
        report = check_distillation(
            rich_program,
            rich_distillation.distilled,
            rich_distillation.pc_map,
        )
        assert report.ok, report.render()

    def test_skewed_resume_is_map002(self, rich_program, rich_distillation):
        # Seeded mutation: shift one anchor's resume pc off its fork.
        pc_map = rich_distillation.pc_map
        anchor = _an_anchor(rich_distillation)
        resume = dict(pc_map.resume)
        resume[anchor] += 1
        report = check_distillation(
            rich_program, rich_distillation.distilled,
            _replace_map(pc_map, resume=resume),
        )
        assert "MAP002" in error_ids(report)

    def test_skewed_arrival_is_map003(self, rich_program, rich_distillation):
        pc_map = rich_distillation.pc_map
        anchor = _an_anchor(rich_distillation)
        arrival = dict(pc_map.arrival)
        arrival[anchor] += 1
        report = check_distillation(
            rich_program, rich_distillation.distilled,
            _replace_map(pc_map, arrival=arrival),
        )
        assert "MAP003" in error_ids(report)

    def test_bogus_jr_entry_is_map004(self, rich_program, rich_distillation):
        pc_map = rich_distillation.pc_map
        jr_table = dict(pc_map.jr_table)
        jr_table[5] = 0  # no block B5 survived layout at pc 0
        report = check_distillation(
            rich_program, rich_distillation.distilled,
            _replace_map(pc_map, jr_table=jr_table),
        )
        assert "MAP004" in error_ids(report)

    def test_unmapped_fork_is_map005(self, rich_program, rich_distillation):
        pc_map = rich_distillation.pc_map
        anchor = _an_anchor(rich_distillation)
        resume = {k: v for k, v in pc_map.resume.items() if k != anchor}
        resume.setdefault(
            pc_map.entry_orig, rich_distillation.distilled.entry
        )
        report = check_distillation(
            rich_program, rich_distillation.distilled,
            _replace_map(pc_map, resume=resume),
        )
        assert "MAP005" in error_ids(report)

    def test_wrong_entry_is_map006(self, rich_program, rich_distillation):
        pc_map = rich_distillation.pc_map
        anchor = _an_anchor(rich_distillation)
        report = check_distillation(
            rich_program, rich_distillation.distilled,
            _replace_map(pc_map, entry_orig=anchor),
        )
        assert "MAP006" in error_ids(report)

    def test_resume_out_of_range_is_map001(
        self, rich_program, rich_distillation
    ):
        pc_map = rich_distillation.pc_map
        anchor = _an_anchor(rich_distillation)
        resume = dict(pc_map.resume)
        resume[anchor] = 9999
        report = check_distillation(
            rich_program, rich_distillation.distilled,
            _replace_map(pc_map, resume=resume),
        )
        assert "MAP001" in error_ids(report)

    def test_anchor_out_of_range_is_map007(
        self, rich_program, rich_distillation
    ):
        pc_map = rich_distillation.pc_map
        resume = dict(pc_map.resume)
        resume[9999] = 1
        report = check_distillation(
            rich_program, rich_distillation.distilled,
            _replace_map(pc_map, resume=resume),
        )
        assert "MAP007" in error_ids(report)


# -- the distiller's verify_after_each_pass mode ----------------------------


class TestVerifyAfterEachPass:
    def test_clean_distillation_passes(self, rich_program, rich_profile):
        config = dataclasses.replace(
            DistillConfig(), verify_after_each_pass=True
        )
        result = Distiller(config).distill(rich_program, rich_profile)
        assert result.distilled.code

    def test_corrupting_pass_raises_checkfailure(
        self, rich_program, rich_profile, monkeypatch
    ):
        import repro.distill.distiller as distiller_module

        real_dce = distiller_module.run_dce

        def corrupting_dce(ir, config):
            stats = real_dce(ir, config)
            ir.blocks[0].fallthrough = "__nope__"
            return stats

        monkeypatch.setattr(distiller_module, "run_dce", corrupting_dce)
        config = dataclasses.replace(
            DistillConfig(), verify_after_each_pass=True
        )
        with pytest.raises(CheckFailure) as excinfo:
            Distiller(config).distill(rich_program, rich_profile)
        failure = excinfo.value
        assert failure.pass_name == "dce"
        assert any(f.check_id == "IR003" for f in failure.findings)
        assert "IR003" in str(failure)

    def test_off_by_default(self, rich_program, rich_profile, monkeypatch):
        import repro.distill.distiller as distiller_module

        real_dce = distiller_module.run_dce

        def corrupting_dce(ir, config):
            stats = real_dce(ir, config)
            # Harmless in practice (layout never reads it back), but the
            # checker would flag it; default mode must not.
            for block in ir.blocks:
                if block.instrs:
                    block.instrs[0].orig_pc = 10_000
                    break
            return stats

        monkeypatch.setattr(distiller_module, "run_dce", corrupting_dce)
        Distiller().distill(rich_program, rich_profile)  # no raise


# -- static squash prediction ----------------------------------------------


class TestPredictedSquashReasons:
    def test_approximating_distillation_predicts_data_squashes(
        self, rich_distillation
    ):
        assert (
            predicted_squash_reasons(rich_distillation)
            == APPROXIMATION_SQUASH_REASONS
        )

    def test_exact_distillation_predicts_only_sound_squashes(
        self, rich_program, rich_profile
    ):
        config = dataclasses.replace(
            DistillConfig(),
            enable_value_spec=False,
            enable_store_elim=False,
            enable_branch_removal=False,
            enable_cold_code=False,
        )
        result = Distiller(config).distill(rich_program, rich_profile)
        assert predicted_squash_reasons(result) == SOUND_SQUASH_REASONS


# -- layer 4: the decoded execution engine ----------------------------------


class TestCheckDecoded:
    def test_clean_program_passes(self, rich_program):
        report = check_decoded(rich_program)
        assert report.ok
        assert not report.findings

    def test_distilled_program_passes(self, rich_program, rich_profile):
        result = Distiller(DistillConfig()).distill(
            rich_program, rich_profile
        )
        assert check_decoded(result.distilled).ok

    def test_amnesiac_cache_is_dec001(self, rich_program):
        # Seeded corruption: a cache attachment that forgets every entry
        # makes decode() hand out a fresh decoding per call.
        from repro.machine.decoded import decode

        class Amnesiac(dict):
            def get(self, key, default=None):
                return None

        decode(rich_program)
        object.__setattr__(rich_program, "_decoded_cache", Amnesiac())
        report = check_decoded(rich_program)
        assert "DEC001" in error_ids(report)

    def test_tampered_meta_is_dec002(self, rich_program):
        from repro.machine.decoded import decode

        decoded = decode(rich_program)
        tampered = list(decoded.meta)
        pc = len(tampered) // 2
        tampered[pc] = tampered[pc][:-2] + (99, None)  # wrong fall-through
        decoded.meta = tuple(tampered)
        report = check_decoded(rich_program)
        assert "DEC002" in error_ids(report)
        assert any(
            f.check_id == "DEC002" and f.pc == pc for f in report.errors
        )

    def test_truncated_chains_are_dec003(self, rich_program):
        from repro.machine.decoded import decode

        decoded = decode(rich_program)
        chains = list(decoded.chains)
        victim = next(
            pc for pc, chain in enumerate(chains) if len(chain) > 1
        )
        chains[victim] = chains[victim][:-1]
        decoded.chains = tuple(chains)
        report = check_decoded(rich_program)
        assert "DEC003" in error_ids(report)

    def test_wrong_halt_flag_is_dec003(self, rich_program):
        from repro.machine.decoded import decode

        decoded = decode(rich_program)
        flags = list(decoded.chain_halts)
        flags[0] = not flags[0]
        decoded.chain_halts = tuple(flags)
        report = check_decoded(rich_program)
        assert "DEC003" in error_ids(report)


# -- layer 5: the superblock JIT --------------------------------------------


class TestCheckJit:
    def test_clean_program_has_no_errors(self, rich_program):
        report = check_jit(rich_program)
        assert report.ok
        assert not report.findings

    def test_broken_cache_attachment_is_jit001(self, rich_program):
        class Amnesiac(dict):
            """A cache that forgets: every lookup misses."""

            def get(self, key, default=None):
                return None

        rich_program.__dict__["_jit_cache"] = Amnesiac()
        report = check_jit(rich_program)
        # Every jit_for() call now builds a fresh JitProgram: the
        # identity discipline check must notice.
        assert "JIT001" in error_ids(report)

    def test_tampered_region_trace_is_jit002(self, rich_program, monkeypatch):
        from repro.machine import jit as jit_mod

        original_for = jit_mod.JitProgram.region_for

        def tampering(self, pc):
            region = original_for(self, pc)
            if region is not None and len(region.pcs) > 1:
                region.pcs = region.pcs[:-1]
            return region

        monkeypatch.setattr(jit_mod.JitProgram, "region_for", tampering)
        report = check_jit(rich_program)
        assert "JIT002" in error_ids(report)

    def test_miscompiled_region_is_jit003(self, rich_program, monkeypatch):
        """Seeded codegen bug: swap the generated `add` for a `sub`."""
        from repro.machine import jit as jit_mod

        original = jit_mod.JitProgram._compile_sources

        def miscompiling(self, entry, pcs, taken, links, sources):
            sources = {
                variant: source.replace("+ r", "- r")
                for variant, source in sources.items()
            }
            return original(self, entry, pcs, taken, links, sources)

        monkeypatch.setattr(
            jit_mod.JitProgram, "_compile_sources", miscompiling
        )
        report = check_jit(rich_program)
        assert "JIT003" in error_ids(report)

    def test_clean_program_exercises_link_promotion(self, rich_program):
        """JIT004 must not be vacuous: the forced-promotion pass inside
        check_jit has to actually fuse regions on the rich fixture."""
        from repro.machine.jit import JitProgram, block_leaders

        jp = JitProgram(
            rich_program, threshold=1, persist=False, link_threshold=1
        )
        for entry in sorted(block_leaders(rich_program)):
            jp.region_for(entry)
        for entry, region in sorted(jp.compiled.items()):
            for target in sorted(region.exit_targets):
                if target in jp.compiled:
                    jp.region_for(entry)
                    jp.region_for(target)
        assert jp.stats["link_promotions"] > 0
        assert any(r.links for r in jp.compiled.values())

    def test_unfused_promotion_is_jit004(self, rich_program, monkeypatch):
        """Seeded link bug: promotion publishes the link without fusing
        the target's trace into the region."""
        from repro.machine import jit as jit_mod

        def bogus_promote(self, entry, target):
            region = self.compiled.get(entry)
            if region is None:
                return
            region.links = region.links + (target,)
            self.links[entry] = set(region.links)
            self._transit.pop(entry, None)
            self.stats["link_promotions"] += 1

        monkeypatch.setattr(jit_mod.JitProgram, "_promote", bogus_promote)
        report = check_jit(rich_program)
        assert "JIT004" in error_ids(report)


# -- memory backends --------------------------------------------------------


class TestCheckMemory:
    def test_clean_program_has_no_errors(self, rich_program):
        from repro.analysis.checker import check_memory

        report = check_memory(rich_program)
        assert report.ok
        assert not report.findings

    def test_skewed_flat_loads_are_mem001(self, rich_program, monkeypatch):
        """Seeded paging bug: flat-backend loads return value + 1."""
        from repro.analysis.checker import check_memory
        from repro.machine import flatmem

        original_get = flatmem.PagedMemory.get

        def skewed_get(self, address, default=0):
            value = original_get(self, address, default)
            return value + 1 if isinstance(value, int) and value else value

        monkeypatch.setattr(flatmem.PagedMemory, "get", skewed_get)
        report = check_memory(rich_program)
        assert "MEM001" in error_ids(report)

    def test_lost_flat_stores_are_mem001(self, rich_program, monkeypatch):
        """Seeded paging bug: the flat backend silently drops stores."""
        from repro.analysis.checker import check_memory
        from repro.machine import flatmem

        def lossy_set(self, address, value):
            pass

        monkeypatch.setattr(flatmem.PagedMemory, "__setitem__", lossy_set)
        report = check_memory(rich_program)
        assert "MEM001" in error_ids(report)


# -- layer 6: runtime event streams -----------------------------------------


def _fork(tid):
    from repro.mssp.runtime.events import TaskForked

    return TaskForked(tid=tid, start_pc=0, end_pc=None)


def _commit(tid):
    from repro.mssp.runtime.events import TaskCommitted

    return TaskCommitted(tid=tid, record=None)


def _squash(tid):
    from repro.mssp.runtime.events import TaskSquashed

    return TaskSquashed(tid=tid, reason="register-live-in", record=None)


def _fail(tid):
    from repro.mssp.runtime.events import MasterFailed

    return MasterFailed(tid=tid, record=None)


class TestCheckRuntimeEvents:
    def test_clean_stream_has_no_errors(self):
        report = check_runtime_events(
            [_fork(0), _fork(1), _commit(0), _commit(1)]
        )
        assert report.ok and not report.findings

    def test_squash_then_refork_is_clean(self):
        report = check_runtime_events(
            [_fork(0), _fork(1), _squash(0), _fork(1), _commit(1)]
        )
        assert report.ok and not report.findings

    def test_out_of_order_judgement_is_rt001(self):
        report = check_runtime_events(
            [_fork(0), _fork(1), _commit(1), _commit(0)]
        )
        assert "RT001" in error_ids(report)

    def test_judgement_with_nothing_outstanding_is_rt001(self):
        report = check_runtime_events([_commit(0)])
        assert "RT001" in error_ids(report)

    def test_non_increasing_committed_tids_is_rt001(self):
        report = check_runtime_events(
            [_fork(3), _commit(3), _fork(3), _commit(3)]
        )
        assert "RT001" in error_ids(report)

    def test_judging_a_squash_discarded_tid_is_rt002(self):
        # The squash of tid 0 kills in-flight tids 1 and 2; judging
        # tid 1 without a fresh fork must be flagged.
        report = check_runtime_events(
            [_fork(0), _fork(1), _fork(2), _squash(0), _commit(1)]
        )
        assert "RT002" in error_ids(report)

    def test_master_failure_discards_successors_rt002(self):
        report = check_runtime_events(
            [_fork(0), _commit(0), _fork(1), _fail(1), _commit(1)]
        )
        assert "RT002" in error_ids(report)

    def test_real_pipelined_run_is_clean(self, rich_program, rich_profile):
        result = Distiller(DistillConfig()).distill(
            rich_program, rich_profile
        )
        report = check_runtime_execution(
            rich_program, (result.distilled, result.pc_map)
        )
        assert report.ok
        assert not report.findings


# -- catalogue integrity ----------------------------------------------------


def _stamp(event, at, actor="runtime"):
    object.__setattr__(event, "at", at)
    object.__setattr__(event, "actor", actor)
    return event


class TestClockStamps:
    """SIM001: per-actor clock monotonicity on stamped streams."""

    def test_stamped_stream_is_clean(self):
        events = [
            _stamp(_fork(0), 1.0), _stamp(_fork(1), 2.0),
            _stamp(_commit(0), 3.0), _stamp(_commit(1), 3.0),
        ]
        report = check_runtime_events(events)
        assert report.ok and not report.findings

    def test_unstamped_stream_is_clean(self):
        # Hand-built events all read the t=0 class default.
        report = check_runtime_events([_fork(0), _commit(0)])
        assert report.ok and not report.findings

    def test_seeded_backwards_stamp_is_sim001(self):
        # Seeded mutation: wind one stamp backwards mid-stream and the
        # lint must catch the clock running in reverse.
        events = [
            _stamp(_fork(0), 1.0), _stamp(_fork(1), 2.0),
            _stamp(_commit(0), 3.0), _stamp(_commit(1), 4.0),
        ]
        assert check_runtime_events(events).ok
        _stamp(events[2], 1.5)
        report = check_runtime_events(events)
        assert "SIM001" in error_ids(report)

    def test_distinct_actors_have_independent_clocks(self):
        # A server stream interleaved with a runtime stream: each
        # actor's stamps are monotone on its own clock.
        events = [
            _stamp(_fork(0), 100.0, actor="runtime"),
            _stamp(_fork(1), 5.0, actor="server"),
            _stamp(_commit(0), 101.0, actor="runtime"),
            _stamp(_commit(1), 6.0, actor="server"),
        ]
        report = check_runtime_events(events)
        assert report.ok and not report.findings

    def test_missing_stamp_is_sim001(self):
        broken = _fork(1)
        object.__setattr__(broken, "at", None)
        report = check_runtime_events(
            [_stamp(_fork(0), 1.0), broken, _stamp(_commit(0), 2.0),
             _stamp(_commit(1), 3.0)]
        )
        assert "SIM001" in error_ids(report)

    def test_live_stream_from_real_run_is_clean(self):
        from repro.config import DistillConfig, MsspConfig
        from repro.distill.distiller import Distiller
        from repro.mssp.engine import create_engine
        from repro.mssp.runtime.events import EventLog
        from repro.profiling import profile_program

        source = """
        main:   li r1, 60
        loop:   addi r1, r1, -1
                add r2, r2, r1
                bne r1, zero, loop
                halt
        """
        program = assemble(source)
        distillation = Distiller(DistillConfig(target_task_size=20)).distill(
            program, profile_program(program)
        )
        log = EventLog()
        with create_engine(
            program, distillation,
            MsspConfig(runtime="thread", num_slaves=2),
        ) as engine:
            engine.events.subscribe(log)
            engine.run()
        report = check_runtime_events(log.events)
        assert report.ok, report.render()


class TestCatalogue:
    def test_pass_invariants_reference_registered_checks(self):
        for stage, ids in PASS_INVARIANTS.items():
            unknown = [i for i in ids if i not in CHECKS]
            assert not unknown, f"{stage} declares unknown checks {unknown}"

    def test_every_stage_declares_invariants(self):
        assert set(PASS_INVARIANTS) == {
            "value_spec", "store_elim", "branch_removal", "cold_code",
            "fork_placement", "dce", "layout",
        }

    def test_docs_catalogue_every_check(self):
        docs = Path(__file__).resolve().parents[2] / "docs"
        text = (docs / "static-checks.md").read_text()
        missing = [cid for cid in CHECKS if cid not in text]
        assert not missing, f"docs/static-checks.md misses {missing}"

    def test_severities_are_exhaustive(self):
        assert {s.value for s in Severity} == {"error", "warning"}
