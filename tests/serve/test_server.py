"""The persistent multi-tenant episode server (`repro.serve`)."""

import threading

import pytest

from repro.config import MsspConfig, ServeConfig
from repro.errors import MsspError
from repro.experiments import cache as artifact_cache
from repro.experiments.bench import cached_prepare
from repro.mssp.engine import run_mssp
from repro.mssp.runtime import EventLog
from repro.mssp.runtime.executors import ThreadExecutor
from repro.serve import (
    EpisodeRequest,
    EpisodeServer,
    ServedProgram,
    ServerBusy,
    state_digest,
)

SMALL = 6  # tiny workload size so served episodes stay fast in tests


@pytest.fixture()
def cache_root(tmp_path, monkeypatch):
    """Point the persistent artifact cache at a private tmpdir."""
    root = tmp_path / "bench-cache"
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(root))
    return root


def assert_identical(reference, candidate):
    """The whole observable MsspResult must match, bit for bit."""
    assert candidate.records == reference.records
    assert candidate.counters == reference.counters
    assert candidate.device_trace == reference.device_trace
    assert candidate.halted == reference.halted
    assert candidate.final_state.pc == reference.final_state.pc
    assert candidate.final_state.diff(reference.final_state) == []


def gate_engine_acquire(server):
    """Park the server's engine checkout; returns ``(gate, entered)``.

    Engine acquisition runs on the worker thread after admission, so
    holding the worker there deterministically keeps it busy while the
    test piles up queued/shed requests.  ``entered`` sets once a worker
    is parked; ``gate.set()`` lets it proceed.
    """
    gate = threading.Event()
    entered = threading.Event()
    original = server.engines.acquire

    def gated(key, build):
        entered.set()
        gate.wait(60)
        return original(key, build)

    server.engines.acquire = gated
    return gate, entered


class TestBitIdentity:
    @pytest.mark.parametrize("runtime", ["eager", "thread", "process"])
    def test_served_result_identical_to_fresh_run(self, cache_root, runtime):
        """Acceptance: every served MsspResult is bit-identical to a
        fresh ``run_mssp`` of the same request, on every backend."""
        config = MsspConfig(runtime=runtime, num_slaves=2)
        with EpisodeServer(ServeConfig(workers=2)) as server:
            responses = [
                server.serve(EpisodeRequest(
                    workload=name, size=SMALL, config=config,
                ))
                for name in ("compress", "crc", "compress")
            ]
        for response in responses:
            assert response.ok and response.worker is not None
            ready, _ = cached_prepare(response.workload, size=SMALL)
            fresh = run_mssp(
                ready.instance.program, ready.distillation, config=config
            )
            assert_identical(fresh, response.result)
            assert state_digest(fresh.final_state) == state_digest(
                response.result.final_state
            )

    def test_batched_episodes_identical_to_unbatched(self, cache_root):
        """Folded episodes run through the same engine path: identical,
        and ``max_batch`` bounds every service turn."""
        config = MsspConfig(runtime="eager")
        server = EpisodeServer(
            ServeConfig(workers=1, worker_capacity=4, max_batch=3)
        )
        gate, _ = gate_engine_acquire(server)
        with server:
            handles = [
                server.submit(EpisodeRequest(
                    workload="crc", size=SMALL, config=config,
                ))
                for _ in range(4)
            ]
            gate.set()
            responses = [handle.result(60) for handle in handles]
        # max_batch=3 bounds the first turn: one direct + two folded;
        # the fourth episode starts a fresh turn.
        assert [r.batched for r in responses] == [False, True, True, False]
        assert server.stats.batched == 2
        ready, _ = cached_prepare("crc", size=SMALL)
        fresh = run_mssp(
            ready.instance.program, ready.distillation, config=config
        )
        for response in responses:
            assert response.ok
            assert_identical(fresh, response.result)


class TestWarmSharing:
    def test_tenant_n_warms_tenant_n_plus_1(self, cache_root):
        """The tentpole cache property: one tenant's compile is the next
        tenant's hit, reported per request."""
        config = MsspConfig(runtime="eager")
        with EpisodeServer(ServeConfig(workers=1)) as server:
            cold = server.serve(EpisodeRequest(
                workload="compress", size=SMALL, config=config, tenant="a",
            ))
            warm = server.serve(EpisodeRequest(
                workload="compress", size=SMALL, config=config, tenant="b",
            ))
            other = server.serve(EpisodeRequest(
                workload="crc", size=SMALL, config=config, tenant="c",
            ))
            summary = server.cache_summary()
        assert cold.cache == {
            "prepared": False, "engine": False, "jit_warm": False,
        }
        assert warm.cache["prepared"] and warm.cache["engine"]
        assert not other.cache["prepared"]  # different program content
        assert summary["prepared_hits"] >= 1
        assert summary["engine_hits"] >= 1

    def test_digest_addressing(self, cache_root):
        """A tenant can name a warm program by bare content digest; an
        unknown digest is an error response, never a recompile."""
        config = MsspConfig(runtime="eager")
        with EpisodeServer(ServeConfig(workers=1)) as server:
            first = server.serve(EpisodeRequest(
                workload="crc", size=SMALL, config=config,
            ))
            by_digest = server.serve(EpisodeRequest(
                digest=first.digest, config=config,
            ))
            assert by_digest.ok and by_digest.cache["prepared"]
            assert_identical(first.result, by_digest.result)
            unknown = server.submit(EpisodeRequest(
                digest="no-such-digest", config=config,
            )).result(60)
        assert unknown.status == "error"
        assert "unknown program digest" in unknown.error

    def test_request_requires_workload_or_digest(self):
        with pytest.raises(MsspError):
            EpisodeRequest()

    def test_preload_skips_distillation(self, cache_root):
        """``preload`` (the lint path's seam) makes the first digest
        request a prepared-cache hit."""
        ready, _ = cached_prepare("crc", size=SMALL)
        program = ready.instance.program
        digest = artifact_cache.program_digest(program)
        entry = ServedProgram(
            name="crc", size=SMALL,
            key=artifact_cache.digest("crc", SMALL, digest, None),
            digest=digest, program=program,
            distillation=ready.distillation, profile=ready.profile,
        )
        with EpisodeServer(ServeConfig(workers=1)) as server:
            server.preload(entry)
            response = server.serve(EpisodeRequest(
                digest=digest, config=MsspConfig(runtime="eager"),
            ))
        assert response.ok and response.cache["prepared"]
        assert server.warm.counters.prepared_misses == 0


class TestWarmup:
    def test_warmup_pre_jits_the_request_path(self, cache_root):
        """Satellite: a warmed request takes the jitcode cache-hit path
        (program JIT cache populated before the episode starts)."""
        jit_config = MsspConfig(runtime="eager", exec_tier="jit")
        server = EpisodeServer(
            ServeConfig(workers=1, warmup=("compress",)),
            mssp_config=jit_config,
        )
        with server:
            response = server.serve(EpisodeRequest(
                workload="compress", config=jit_config, tenant="late",
            ))
            entry = server.warm.lookup_digest(response.digest)
        assert server.stats.warmup_episodes == 1
        assert entry is not None and entry.jit_warm
        assert response.cache == {
            "prepared": True, "engine": True, "jit_warm": True,
        }

    def test_warmup_emits_no_episode_events(self, cache_root):
        """Warmup bypasses the scheduler: RT004 audits tenants only."""
        log = EventLog()
        server = EpisodeServer(ServeConfig(workers=1, warmup=("crc",)))
        server.events.subscribe(log)
        with server:
            pass
        assert server.stats.warmup_episodes == 1
        assert [event.kind for event in log.events] == []


class TestAdmission:
    def test_wait_queues_then_sheds_beyond_depth(self, cache_root):
        config = MsspConfig(runtime="eager")
        server = EpisodeServer(ServeConfig(
            workers=1, worker_capacity=1, max_queue_depth=2,
            admission="wait",
        ))
        log = EventLog()
        server.events.subscribe(log)
        gate, _ = gate_engine_acquire(server)
        with server:
            # 1 dispatched + 2 queued + 2 shed, deterministically: the
            # worker slot is held until the engine gate opens.
            handles = [
                server.submit(EpisodeRequest(
                    workload="crc", size=SMALL, config=config,
                ))
                for _ in range(5)
            ]
            assert server.stats.queue_depth == 2
            assert sum(h.done() for h in handles) == 2  # sheds are sync
            gate.set()
            responses = [handle.result(60) for handle in handles]
        statuses = [r.status for r in responses]
        assert statuses == ["ok", "ok", "ok", "shed", "shed"]
        shed = [e for e in log.events if e.kind == "episode_shed"]
        assert len(shed) == 2 and all(e.why == "queue-full" for e in shed)
        assert server.stats.max_queue_depth == 2

    def test_shed_mode_and_typed_server_busy(self, cache_root):
        config = MsspConfig(runtime="eager")
        server = EpisodeServer(ServeConfig(
            workers=1, worker_capacity=1, admission="shed",
        ))
        gate, _ = gate_engine_acquire(server)
        with server:
            first = server.submit(EpisodeRequest(
                workload="crc", size=SMALL, config=config,
            ))
            with pytest.raises(ServerBusy) as excinfo:
                server.serve(EpisodeRequest(
                    workload="crc", size=SMALL, config=config,
                ))
            assert excinfo.value.response.status == "shed"
            assert excinfo.value.response.error == "all-workers-busy"
            gate.set()
            assert first.result(60).ok

    def test_shed_leaves_caches_and_counters_consistent(self, cache_root):
        """Satellite: a shed request touches no warm-cache state, and a
        follow-up request for the same content still serves warm."""
        config = MsspConfig(runtime="eager")
        server = EpisodeServer(ServeConfig(
            workers=1, worker_capacity=1, admission="shed",
        ))
        gate, entered = gate_engine_acquire(server)
        with server:
            first = server.submit(EpisodeRequest(
                workload="compress", size=SMALL, config=config,
            ))
            # The worker has resolved the program and parked in engine
            # acquisition: every counter is now stable until the gate
            # opens, so the shed's (non-)effect is exactly observable.
            assert entered.wait(30)
            before = server.cache_summary()
            shed = server.submit(EpisodeRequest(
                workload="compress", size=SMALL, config=config,
            )).result(60)
            assert server.cache_summary() == before
            gate.set()
            assert first.result(60).ok
            follow_up = server.serve(EpisodeRequest(
                workload="compress", size=SMALL, config=config,
            ))
        assert shed.status == "shed"
        assert follow_up.ok and follow_up.cache["prepared"]
        assert follow_up.cache["engine"]
        assert server.stats.shed == 1 and server.stats.completed == 2

    def test_close_drains_assigned_and_sheds_queued(self, cache_root):
        config = MsspConfig(runtime="eager")
        server = EpisodeServer(ServeConfig(workers=1, worker_capacity=1))
        gate, entered = gate_engine_acquire(server)
        server.start()
        running = server.submit(EpisodeRequest(
            workload="crc", size=SMALL, config=config,
        ))
        queued = server.submit(EpisodeRequest(
            workload="crc", size=SMALL, config=config,
        ))
        assert entered.wait(30)
        closer = threading.Thread(target=server.close)
        closer.start()
        # close() sheds the backlog before draining the fleet, so the
        # queued tenant's answer never waits on the running episode.
        response = queued.result(60)
        assert response.status == "shed"
        assert response.error == "server-closed"
        gate.set()
        closer.join(60)
        assert not closer.is_alive()
        assert running.result(60).ok  # assigned work drains, not sheds

    def test_submit_after_close_raises(self, cache_root):
        server = EpisodeServer(ServeConfig(workers=1))
        server.start()
        server.close()
        with pytest.raises(MsspError):
            server.submit(EpisodeRequest(
                workload="crc", size=SMALL,
                config=MsspConfig(runtime="eager"),
            ))


class TestFaultPaths:
    def test_worker_death_degrades_without_poisoning_tenants(
        self, cache_root, monkeypatch
    ):
        """Satellite: a slave pool dying mid-episode degrades that
        episode to local re-execution (``pool_degraded``), still
        bit-identical — and queued tenants are untouched."""

        def refuse(self):
            self.mark_broken("thread pool forced down (test)")
            return None

        monkeypatch.setattr(ThreadExecutor, "_ensure_pool", refuse)
        config = MsspConfig(runtime="thread", num_slaves=2)
        with EpisodeServer(ServeConfig(workers=2)) as server:
            handles = [
                server.submit(EpisodeRequest(
                    workload=name, size=SMALL, config=config,
                    tenant=f"t{i}",
                ))
                for i, name in enumerate(("compress", "crc", "compress"))
            ]
            responses = [handle.result(60) for handle in handles]
        assert [r.status for r in responses] == ["ok"] * 3
        for response in responses:
            ready, _ = cached_prepare(response.workload, size=SMALL)
            fresh = run_mssp(
                ready.instance.program, ready.distillation, config=config
            )
            assert_identical(fresh, response.result)

    def test_raising_engine_is_discarded_not_reused(
        self, cache_root, monkeypatch
    ):
        """An engine that dies mid-episode answers that one tenant with
        an error, is discarded from the pool, and every other queued
        tenant is served by a fresh engine."""
        from repro.mssp.engine import MsspEngine

        real_run = MsspEngine.run
        calls = {"n": 0}

        def flaky(self):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("worker died mid-episode (test)")
            return real_run(self)

        monkeypatch.setattr(MsspEngine, "run", flaky)
        config = MsspConfig(runtime="eager")
        log = EventLog()
        server = EpisodeServer(ServeConfig(workers=1))
        server.events.subscribe(log)
        with server:
            handles = [
                server.submit(EpisodeRequest(
                    workload="crc", size=SMALL, config=config,
                    tenant=f"t{i}",
                ))
                for i in range(3)
            ]
            responses = [handle.result(60) for handle in handles]
            assert len(server.engines) == 1  # fresh pooled, dead one gone
        assert [r.status for r in responses] == ["error", "ok", "ok"]
        assert "worker died mid-episode" in responses[0].error
        completed = [e for e in log.events if e.kind == "episode_completed"]
        assert sorted(e.ok for e in completed) == [False, True, True]
        ready, _ = cached_prepare("crc", size=SMALL)
        fresh = run_mssp(
            ready.instance.program, ready.distillation, config=config
        )
        for response in responses[1:]:
            assert_identical(fresh, response.result)


class TestEngineReuse:
    def test_engine_pool_reuses_one_engine_serially(self, cache_root):
        """Repeated same-key requests reuse one pooled engine (the
        per-run reset inside ``MsspEngine.run`` makes that sound)."""
        config = MsspConfig(runtime="eager")
        with EpisodeServer(ServeConfig(workers=1)) as server:
            for _ in range(3):
                assert server.serve(EpisodeRequest(
                    workload="crc", size=SMALL, config=config,
                )).ok
            assert len(server.engines) == 1
        assert server.engines.counters.engine_misses == 1
        assert server.engines.counters.engine_hits == 2

    def test_distinct_configs_get_distinct_engines(self, cache_root):
        with EpisodeServer(ServeConfig(workers=1)) as server:
            server.serve(EpisodeRequest(
                workload="crc", size=SMALL,
                config=MsspConfig(runtime="eager"),
            ))
            server.serve(EpisodeRequest(
                workload="crc", size=SMALL,
                config=MsspConfig(runtime="eager", num_slaves=3),
            ))
            assert len(server.engines) == 2
        assert server.engines.counters.engine_misses == 2
