"""RT004, the serving benchmark, and the serve front-ends."""

import json
import time

import pytest

from repro.analysis.checker import (
    check_server_events,
    check_server_execution,
)
from repro.config import MsspConfig, ServeConfig
from repro.experiments import cache as artifact_cache
from repro.experiments.bench import cached_prepare
from repro.mssp.engine import run_mssp
from repro.mssp.runtime import EventLog
from repro.mssp.runtime.events import (
    EpisodeAccepted,
    EpisodeCompleted,
    EpisodeDispatched,
    EpisodeShed,
)
from repro.serve import EpisodeRequest, EpisodeServer
from repro.serve.bench import (
    cold_baseline,
    percentile,
    poisson_arrivals,
    run_serve_bench,
)

SMALL = 6


@pytest.fixture()
def cache_root(tmp_path, monkeypatch):
    root = tmp_path / "bench-cache"
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(root))
    return root


def error_ids(report):
    return {f.check_id for f in report.errors}


def _accept(rid):
    return EpisodeAccepted(request_id=rid, digest=f"d{rid}")


def _dispatch(rid, worker=0, capacity=2, batched=False):
    return EpisodeDispatched(
        request_id=rid, worker=worker, capacity=capacity, batched=batched
    )


def _complete(rid, worker=0, ok=True):
    return EpisodeCompleted(request_id=rid, worker=worker, ok=ok)


def _shed(rid):
    return EpisodeShed(request_id=rid, why="queue-full")


class TestCheckServerEvents:
    """RT004 over hand-built streams: the mutation-negative cases."""

    def test_clean_stream_is_ok(self):
        report = check_server_events([
            _accept(0), _dispatch(0), _accept(1), _dispatch(1),
            _complete(0), _complete(1),
            _accept(2), _shed(2),
        ])
        assert report.ok and not report.findings

    def test_batched_redispatch_is_ok(self):
        # A folded episode re-announces its dispatch with batched=True
        # on the same worker; that must not double-count the slot.
        report = check_server_events([
            _accept(0), _dispatch(0), _accept(1), _dispatch(1),
            _dispatch(1, batched=True),
            _complete(0), _complete(1),
        ])
        assert report.ok

    def test_redispatch_releases_previous_worker_slot(self):
        report = check_server_events([
            _accept(0), _dispatch(0, worker=0, capacity=1),
            _dispatch(0, worker=1, capacity=1),
            _accept(1), _dispatch(1, worker=0, capacity=1),
            _complete(0, worker=1), _complete(1, worker=0),
        ])
        assert report.ok

    def test_lost_request_is_rt004(self):
        report = check_server_events([
            _accept(0), _dispatch(0), _accept(1), _dispatch(1),
            _complete(0),
        ])
        assert "RT004" in error_ids(report)

    def test_double_terminal_is_rt004(self):
        report = check_server_events([
            _accept(0), _dispatch(0), _complete(0), _complete(0),
        ])
        assert "RT004" in error_ids(report)

    def test_completed_then_shed_is_rt004(self):
        report = check_server_events([
            _accept(0), _dispatch(0), _complete(0), _shed(0),
        ])
        assert "RT004" in error_ids(report)

    def test_duplicate_accept_is_rt004(self):
        report = check_server_events([
            _accept(0), _accept(0), _dispatch(0), _complete(0),
        ])
        assert "RT004" in error_ids(report)

    def test_dispatch_without_accept_is_rt004(self):
        report = check_server_events([_dispatch(7)])
        assert "RT004" in error_ids(report)

    def test_over_capacity_worker_is_rt004(self):
        report = check_server_events([
            _accept(0), _dispatch(0, capacity=1),
            _accept(1), _dispatch(1, capacity=1),
            _complete(0), _complete(1),
        ])
        assert "RT004" in error_ids(report)

    def test_engine_events_interleave_cleanly(self):
        from repro.mssp.runtime.events import TaskForked

        report = check_server_events([
            _accept(0), _dispatch(0),
            TaskForked(tid=0, start_pc=0, end_pc=None),
            _complete(0),
        ])
        assert report.ok

    def test_real_server_stream_is_clean(self, cache_root):
        """A live burst — dispatch, queueing, sheds — lints clean."""
        config = MsspConfig(runtime="eager")
        log = EventLog()
        server = EpisodeServer(ServeConfig(
            workers=2, worker_capacity=1, max_queue_depth=2,
        ))
        server.events.subscribe(log)
        with server:
            handles = [
                server.submit(EpisodeRequest(
                    workload="crc", size=SMALL, config=config,
                    tenant=f"t{i}",
                ))
                for i in range(8)
            ]
            for handle in handles:
                handle.result(60)
        kinds = {event.kind for event in log.events}
        assert "episode_accepted" in kinds
        report = check_server_events(log.events)
        assert report.ok, [f.message for f in report.errors]

    def test_check_server_execution_on_prepared_workload(self, cache_root):
        """The ``repro lint`` entry point: serve a burst, audit RT004."""
        ready, _ = cached_prepare("crc", size=SMALL)
        report = check_server_execution(
            "crc", ready.instance.program, ready.distillation,
            subject="crc: server", profile=ready.profile, size=SMALL,
        )
        assert report.ok, [f.message for f in report.errors]


class TestBenchPrimitives:
    def test_poisson_arrivals_are_seeded_and_monotonic(self):
        first = poisson_arrivals(8.0, 32, seed=3)
        again = poisson_arrivals(8.0, 32, seed=3)
        other = poisson_arrivals(8.0, 32, seed=4)
        assert first == again
        assert first != other
        assert all(b > a for a, b in zip(first, first[1:]))
        # Mean inter-arrival of a rate-8 process is 1/8 s; 32 samples
        # land within a loose factor-of-3 band around it.
        mean_gap = first[-1] / len(first)
        assert 1 / 24 < mean_gap < 3 / 8

    def test_percentile_nearest_rank(self):
        assert percentile([], 50) == 0.0
        assert percentile([7.0], 99.9) == 7.0
        values = [4.0, 1.0, 3.0, 2.0]
        assert percentile(values, 50) == 2.0
        assert percentile(values, 99) == 4.0
        assert percentile(values, 1) == 1.0

    def test_cold_baseline_counts_fresh_pipelines(self, cache_root):
        cold = cold_baseline(
            ("crc",), 2, sizes={"crc": SMALL},
            config=MsspConfig(runtime="eager"),
        )
        assert cold["episodes"] == 2
        assert cold["wall_seconds"] > 0
        assert cold["episodes_per_sec"] > 0
        # Fresh `prepare` per episode must not touch the artifact cache.
        assert not cache_root.exists() or not list(cache_root.iterdir())


class TestRunServeBench:
    def test_summary_shape_and_accounting(self, cache_root):
        summary = run_serve_bench(
            workloads=("compress", "crc"), rates=(60.0,),
            requests_per_rate=6, burst_requests=6, cold_episodes=2,
            size=SMALL, seed=1,
            serve_config=ServeConfig(workers=2),
            mssp_config=MsspConfig(runtime="eager"),
        )
        assert summary["schema"] == artifact_cache.CACHE_SCHEMA
        assert summary["workloads"] == ["compress", "crc"]
        assert summary["sizes"] == {"compress": SMALL, "crc": SMALL}
        assert summary["warm"]["episodes"] == 6
        assert summary["speedup_vs_cold"] > 0
        stage = summary["open_loop"][0]
        assert stage["rate"] == 60.0
        assert stage["offered"] == 6
        assert stage["completed"] + stage["shed"] == 6
        assert stage["latency_p50_ms"] <= stage["latency_p99_ms"]
        assert stage["latency_p99_ms"] <= stage["latency_p999_ms"]
        # Warmup + burst + open loop over two programs: the stream is
        # dominated by shared-cache hits.
        assert summary["cache_hit_rate"] > 0
        assert summary["stats"]["completed"] >= 6
        assert summary["stats"]["warmup_episodes"] == 2


class TestServeSmoke:
    """The CI `serve-smoke` contract, in-process."""

    def test_warm_server_beats_cold_sequential_2x_on_mixed_stream(
        self, cache_root
    ):
        """Acceptance: ~50 mixed requests on the thread backend — every
        result bit-identical to a fresh run, nonzero shared-cache hit
        rate, and warm throughput at least 2x the cold baseline."""
        workloads = ("compress", "crc", "branchy")
        config = MsspConfig(runtime="thread", num_slaves=2)
        cold = cold_baseline(
            workloads, len(workloads),
            sizes={name: SMALL for name in workloads}, config=config,
        )
        log = EventLog()
        # Deep enough a 48-request closed-loop burst never sheds.
        server = EpisodeServer(ServeConfig(workers=2, max_queue_depth=48))
        server.events.subscribe(log)
        with server:
            for name in workloads:
                server.warm_workload(name, size=SMALL)
            start = time.perf_counter()
            handles = [
                server.submit(EpisodeRequest(
                    workload=workloads[i % 3], size=SMALL, config=config,
                    tenant=f"tenant-{i % 3}",
                ))
                for i in range(48)
            ]
            responses = [handle.result(120) for handle in handles]
            wall = time.perf_counter() - start
            cache = server.cache_summary()
        assert all(response.ok for response in responses)

        # Bit-identity, one sample per workload.
        for name in workloads:
            sample = next(r for r in responses if r.workload == name)
            ready, _ = cached_prepare(name, size=SMALL)
            fresh = run_mssp(
                ready.instance.program, ready.distillation, config=config
            )
            assert sample.result.counters == fresh.counters
            assert sample.result.final_state.diff(fresh.final_state) == []

        # Shared warm caches actually carried the stream.
        hits = cache["prepared_hits"] + cache["engine_hits"]
        misses = cache["prepared_misses"] + cache["engine_misses"]
        assert hits > 0 and hits / (hits + misses) > 0.5

        # The event stream of the whole smoke burst satisfies RT004.
        assert check_server_events(log.events).ok

        warm_eps = len(responses) / wall
        cold_eps = cold["episodes_per_sec"]
        assert warm_eps >= 2 * cold_eps, (
            f"warm {warm_eps:.2f} eps vs cold {cold_eps:.2f} eps"
        )


class TestBenchCacheAggregation:
    """Satellite: the suite's top-level cache flags derive from rows."""

    def test_rerun_reports_suite_wide_hits(self, cache_root):
        from repro.experiments.bench import run_bench

        first = run_bench(workloads=["compress"], scale=0.02)
        again = run_bench(workloads=["compress"], scale=0.02)
        assert first["cache_hits"] == 0
        assert first["adaptive_cache_hits"] == 0
        assert again["cache_hits"] == len(again["suite"]) == 1
        assert again["adaptive_cache_hits"] == 1
        assert again["suite"][0]["cache_hit"] is True
        assert again["suite"][0]["adaptive_cache_hit"] is True

    def test_write_summary_rederives_from_rows(self, cache_root, tmp_path):
        from repro.experiments.bench import write_summary

        summary = {
            "suite": [
                {"workload": "a", "cache_hit": True,
                 "adaptive_cache_hit": False},
                {"workload": "b", "cache_hit": True,
                 "adaptive_cache_hit": True},
            ],
            "cache_hits": 0,          # stale aggregate a caller kept
            "adaptive_cache_hits": 7,
        }
        path = tmp_path / "BENCH_summary.json"
        write_summary(summary, str(path))
        written = json.loads(path.read_text())
        assert written["cache_hits"] == 2
        assert written["adaptive_cache_hits"] == 1


class TestCliServe:
    def test_jsonl_round_trip(self, cache_root, tmp_path, capsys):
        from repro.cli import main

        requests = tmp_path / "requests.jsonl"
        requests.write_text("\n".join([
            json.dumps({"workload": "crc", "size": SMALL, "tenant": "a"}),
            "# a comment line",
            json.dumps({"workload": "crc", "size": SMALL, "tenant": "b"}),
            json.dumps({"workload": "no-such-workload"}),
            "{not json",
        ]) + "\n")
        assert main([
            "serve", "--requests", str(requests),
            "--workers", "1", "--runtime", "eager",
        ]) == 0
        lines = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines() if line
        ]
        served = [line for line in lines if line.get("status") == "ok"]
        rejected = [
            line for line in lines if "bad request line" in
            str(line.get("error", ""))
        ]
        assert len(served) == 2 and len(rejected) == 2
        assert served[0]["tenant"] == "a" and served[1]["tenant"] == "b"
        # Same program, same configuration: same architected outcome.
        assert served[0]["state_digest"] == served[1]["state_digest"]
        assert served[1]["cache"]["prepared"] is True

    def test_unknown_warmup_is_an_error(self, capsys):
        from repro.cli import main

        assert main([
            "serve", "--warmup", "no-such-workload",
            "--requests", "/dev/null",
        ]) == 2
        assert "unknown warmup" in capsys.readouterr().err

    def test_bench_serve_writes_summary_section(
        self, cache_root, tmp_path, capsys
    ):
        from repro.cli import main

        out = tmp_path / "BENCH_summary.json"
        assert main([
            "bench", "--serve", "--scale", "0.02",
            "--workloads", "compress", "crc",
            "--serve-rates", "60", "--serve-requests", "4",
            "--output", str(out),
        ]) == 0
        summary = json.loads(out.read_text())
        serve = summary["serve_bench"]
        assert summary["schema"] == artifact_cache.CACHE_SCHEMA
        assert serve["workloads"] == ["compress", "crc"]
        assert len(serve["open_loop"]) == 1
        captured = capsys.readouterr().out
        assert "warm vs cold" in captured
        assert "open-loop Poisson arrivals" in captured
