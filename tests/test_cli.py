"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonexistent"])

    @pytest.mark.parametrize(
        "argv",
        [
            ["list"],
            ["seq", "compress"],
            ["seq", "compress", "--size", "100"],
            ["distill", "crc", "--show-asm"],
            ["run", "compress", "--slaves", "4", "--task-size", "50"],
            ["suite"],
            ["lint", "compress"],
            ["lint", "--all"],
            ["lint", "crc", "--size", "200", "--task-size", "40"],
            ["lint", "crc", "--format", "json"],
            ["analyze", "crc"],
            ["analyze", "--all"],
            ["analyze", "crc", "--size", "40", "--format", "json"],
        ],
    )
    def test_accepts_valid_invocations(self, argv):
        args = build_parser().parse_args(argv)
        assert args.command == argv[0]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "compress" in out and "interp" in out

    def test_seq(self, capsys):
        assert main(["seq", "compress", "--size", "200"]) == 0
        out = capsys.readouterr().out
        assert "halted after" in out
        assert "result[0]" in out

    def test_distill(self, capsys):
        assert main(["distill", "compress", "--size", "300"]) == 0
        out = capsys.readouterr().out
        assert "static:" in out
        assert "dynamic:" in out

    def test_distill_show_asm(self, capsys):
        assert main(
            ["distill", "compress", "--size", "300", "--show-asm"]
        ) == 0
        out = capsys.readouterr().out
        assert "fork" in out

    def test_run(self, capsys):
        assert main(
            ["run", "compress", "--size", "300", "--slaves", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "equivalent to SEQ" in out
        assert "speedup" in out

    def test_run_with_task_size(self, capsys):
        assert main(
            ["run", "compress", "--size", "300", "--task-size", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_lint_single_workload(self, capsys):
        assert main(["lint", "compress", "--size", "300"]) == 0
        out = capsys.readouterr().out
        assert "compress: ok" in out
        assert "compress: distilled: ok" in out
        assert "lint: 1 workload(s), clean" in out

    def test_lint_without_workload_or_all_fails(self, capsys):
        assert main(["lint"]) == 2
        err = capsys.readouterr().err
        assert "--all" in err

    def test_lint_json(self, capsys):
        import json

        assert main(["lint", "crc", "--size", "200", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["workloads"][0]["workload"] == "crc"
        reports = payload["workloads"][0]["reports"]
        assert all(r["ok"] for r in reports)
        # Same finding schema as ``repro analyze --format json``.
        assert {"subject", "ok", "errors", "warnings", "findings"} <= (
            set(reports[0])
        )

    def test_analyze_text(self, capsys):
        assert main(["analyze", "crc", "--size", "40"]) == 0
        out = capsys.readouterr().out
        assert "anchor" in out
        assert "proven" in out
        assert "static verify skips" in out

    def test_analyze_json(self, capsys):
        import json

        assert main(
            ["analyze", "crc", "--size", "40", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        entry = payload["workloads"][0]
        assert entry["workload"] == "crc"
        assert entry["safety"]["counts"]["proven"] >= 1
        assert entry["runtime"]["static_verify_skips"] > 0
        assert entry["regions"]

    def test_analyze_without_workload_or_all_fails(self, capsys):
        assert main(["analyze"]) == 2
        err = capsys.readouterr().err
        assert "--all" in err

    def test_timeline(self, capsys):
        assert main(
            ["timeline", "compress", "--size", "300", "--slaves", "2",
             "--width", "40"]
        ) == 0
        out = capsys.readouterr().out
        assert "master" in out
        assert "slave 0" in out
        assert "legend" in out
