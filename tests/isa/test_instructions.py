"""Unit tests for instruction construction, classification, and rendering."""

import pytest

from repro.errors import IsaError
from repro.isa.instructions import (
    BRANCH_OPS,
    Format,
    Instruction,
    JUMP_OPS,
    Opcode,
    branch,
    fork,
    halt,
    i2,
    jal,
    jr,
    jump,
    li,
    lw,
    mov,
    nop,
    r3,
    sw,
)
from repro.isa.registers import RA


class TestConstruction:
    def test_r3_requires_all_registers(self):
        instr = r3(Opcode.ADD, 1, 2, 3)
        assert (instr.rd, instr.rs, instr.rt) == (1, 2, 3)
        with pytest.raises(IsaError):
            Instruction(op=Opcode.ADD, rd=1, rs=2)  # missing rt

    def test_rejects_extraneous_operands(self):
        with pytest.raises(IsaError):
            Instruction(op=Opcode.NOP, rd=1)
        with pytest.raises(IsaError):
            Instruction(op=Opcode.J, target=3, imm=5)

    def test_rejects_bad_register(self):
        with pytest.raises(IsaError):
            r3(Opcode.ADD, 1, 2, 99)

    def test_rejects_non_int_imm(self):
        with pytest.raises(IsaError):
            Instruction(op=Opcode.LI, rd=1, imm="five")

    def test_target_accepts_label_or_pc(self):
        assert jump("loop").target == "loop"
        assert jump(7).target == 7
        with pytest.raises(IsaError):
            Instruction(op=Opcode.J, target=3.5)

    def test_frozen(self):
        instr = nop()
        with pytest.raises(AttributeError):
            instr.rd = 5


class TestClassification:
    def test_branch_flags(self):
        for op in BRANCH_OPS:
            instr = branch(op, 1, 2, 0)
            assert instr.is_branch and instr.is_terminator and not instr.is_jump

    def test_jump_flags(self):
        assert jump(0).is_jump and jump(0).is_terminator
        assert jal(0).is_jump
        assert jr(1).is_jump
        assert set(JUMP_OPS) == {Opcode.J, Opcode.JAL, Opcode.JR}

    def test_halt_is_terminator_not_branch(self):
        assert halt().is_terminator
        assert not halt().is_branch and not halt().is_jump

    def test_loads_and_stores(self):
        assert lw(1, 0, 2).is_load and not lw(1, 0, 2).is_store
        assert sw(1, 0, 2).is_store and not sw(1, 0, 2).is_load

    def test_fork_is_not_terminator(self):
        instr = fork(12)
        assert not instr.is_terminator
        assert instr.has_side_effect


class TestDefsUses:
    def test_r3(self):
        instr = r3(Opcode.ADD, 1, 2, 3)
        assert instr.defs() == {1}
        assert instr.uses() == {2, 3}

    def test_i2(self):
        instr = i2(Opcode.ADDI, 4, 5, 10)
        assert instr.defs() == {4}
        assert instr.uses() == {5}

    def test_load_store(self):
        assert lw(1, 4, 2).defs() == {1}
        assert lw(1, 4, 2).uses() == {2}
        assert sw(3, 4, 2).defs() == set()
        assert sw(3, 4, 2).uses() == {2, 3}

    def test_branch_uses_both(self):
        instr = branch(Opcode.BEQ, 6, 7, 0)
        assert instr.uses() == {6, 7}
        assert instr.defs() == set()

    def test_jal_defs_ra(self):
        assert jal(0).defs() == {RA}

    def test_jr_uses_rs(self):
        assert jr(9).uses() == {9}

    def test_li_mov(self):
        assert li(2, 7).defs() == {2} and li(2, 7).uses() == set()
        assert mov(2, 3).defs() == {2} and mov(2, 3).uses() == {3}

    def test_side_effects(self):
        assert sw(1, 0, 2).has_side_effect
        assert halt().has_side_effect
        assert jal(0).has_side_effect
        assert not r3(Opcode.ADD, 1, 2, 3).has_side_effect
        assert not lw(1, 0, 2).has_side_effect


class TestRendering:
    @pytest.mark.parametrize(
        "instr, expected",
        [
            (r3(Opcode.ADD, 1, 2, 3), "add r1, r2, r3"),
            (i2(Opcode.ADDI, 1, 2, -5), "addi r1, r2, -5"),
            (li(4, 100), "li r4, 100"),
            (mov(4, 5), "mov r4, r5"),
            (lw(1, 8, 2), "lw r1, 8(r2)"),
            (sw(1, -4, 2), "sw r1, -4(r2)"),
            (branch(Opcode.BNE, 1, 0, 12), "bne r1, zero, 12"),
            (jump(3), "j 3"),
            (jr(31), "jr ra"),
            (halt(), "halt"),
            (nop(), "nop"),
            (fork(42), "fork 42"),
        ],
    )
    def test_canonical_rendering(self, instr, expected):
        assert str(instr) == expected

    def test_with_target(self):
        instr = jump("loop").with_target(9)
        assert instr.target == 9
        assert instr.op is Opcode.J


class TestOpcodeTables:
    def test_numbers_unique(self):
        numbers = [op.number for op in Opcode]
        assert len(numbers) == len(set(numbers))

    def test_mnemonics_unique(self):
        mnemonics = [op.mnemonic for op in Opcode]
        assert len(mnemonics) == len(set(mnemonics))

    def test_every_format_used(self):
        used = {op.format for op in Opcode}
        assert used == set(Format)
