"""Unit tests for register naming and validation."""

import pytest

from repro.errors import IsaError
from repro.isa.registers import (
    FP,
    NUM_REGS,
    RA,
    SP,
    ZERO,
    check_register,
    parse_register,
    register_name,
)


class TestParseRegister:
    def test_numeric_names(self):
        assert parse_register("r0") == 0
        assert parse_register("r31") == 31
        assert parse_register("r7") == 7

    def test_aliases(self):
        assert parse_register("zero") == ZERO
        assert parse_register("sp") == SP
        assert parse_register("fp") == FP
        assert parse_register("ra") == RA

    def test_case_and_whitespace_insensitive(self):
        assert parse_register("  R5 ") == 5
        assert parse_register("SP") == SP

    @pytest.mark.parametrize("bad", ["r32", "r-1", "x1", "", "r", "r1.5", "reg1"])
    def test_rejects_invalid(self, bad):
        with pytest.raises(IsaError):
            parse_register(bad)


class TestRegisterName:
    def test_roundtrip_all(self):
        for number in range(NUM_REGS):
            assert parse_register(register_name(number)) == number

    def test_aliases_preferred(self):
        assert register_name(SP) == "sp"
        assert register_name(ZERO) == "zero"

    def test_plain_form(self):
        assert register_name(SP, prefer_alias=False) == "r29"

    def test_rejects_out_of_range(self):
        with pytest.raises(IsaError):
            register_name(NUM_REGS)
        with pytest.raises(IsaError):
            register_name(-1)


class TestCheckRegister:
    def test_accepts_valid(self):
        assert check_register(0) == 0
        assert check_register(31) == 31

    @pytest.mark.parametrize("bad", [-1, 32, "r1", 1.0, None])
    def test_rejects_invalid(self, bad):
        with pytest.raises(IsaError):
            check_register(bad)
