"""Unit and property tests for the binary instruction encoding."""

import pytest
from hypothesis import given

from repro.errors import IsaError
from repro.isa.encoding import (
    INSTRUCTION_BYTES,
    code_size_bytes,
    decode_instruction,
    decode_program_words,
    encode_instruction,
    encode_program_words,
)
from repro.isa.instructions import Opcode, halt, jump, li, lw, r3

from tests.strategies import instructions


class TestRoundTrip:
    @given(instructions())
    def test_encode_decode_roundtrip(self, instr):
        high, low = encode_instruction(instr)
        assert decode_instruction(high, low) == instr

    def test_negative_immediate(self):
        instr = li(3, -(2 ** 62))
        assert decode_instruction(*encode_instruction(instr)) == instr

    def test_program_words_roundtrip(self):
        code = [li(1, 5), r3(Opcode.ADD, 1, 1, 1), jump(0), halt()]
        words = encode_program_words(code)
        assert len(words) == 2 * len(code)
        assert decode_program_words(words) == code


class TestErrors:
    def test_rejects_symbolic_target(self):
        with pytest.raises(IsaError):
            encode_instruction(jump("loop"))

    def test_rejects_oversized_immediate(self):
        with pytest.raises(IsaError):
            encode_instruction(li(1, 2 ** 63))

    def test_rejects_unknown_opcode_number(self):
        with pytest.raises(IsaError):
            decode_instruction(0xFF << 56, 0)

    def test_rejects_odd_word_count(self):
        with pytest.raises(IsaError):
            decode_program_words([1, 2, 3])


class TestSizes:
    def test_instruction_bytes(self):
        assert INSTRUCTION_BYTES == 16

    def test_code_size(self):
        assert code_size_bytes([halt(), halt()]) == 32
        assert code_size_bytes([lw(1, 0, 2)]) == 16
