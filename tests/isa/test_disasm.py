"""Tests for the disassembler, including assemble/disassemble round-trips."""

from hypothesis import given, settings

from repro.isa.asm import assemble
from repro.isa.builder import ProgramBuilder
from repro.isa.disasm import disassemble

from tests.strategies import terminating_programs


def roundtrip(program):
    return assemble(disassemble(program), name=program.name)


class TestRoundTrip:
    def test_simple_loop(self):
        program = assemble(
            """
            main:   li r1, 3
            loop:   addi r1, r1, -1
                    bne r1, zero, loop
                    halt
            """
        )
        again = roundtrip(program)
        assert again.code == program.code
        assert again.entry == program.entry
        assert dict(again.memory) == dict(program.memory)

    def test_data_preserved(self):
        program = assemble(
            """
            halt
            .data 0x40
            .word 1, 2, 3
            .data 0x100
            .word -9
            """
        )
        again = roundtrip(program)
        assert dict(again.memory) == {0x40: 1, 0x41: 2, 0x42: 3, 0x100: -9}

    def test_fork_targets_rendered_numerically(self):
        b = ProgramBuilder()
        b.fork(1234)
        b.halt()
        text = disassemble(b.build())
        assert "fork 1234" in text

    def test_nonzero_entry_gets_main_label(self):
        b = ProgramBuilder()
        b.halt()
        b.label("main")
        b.nop()
        b.halt()
        program = b.build()
        again = roundtrip(program)
        assert again.entry == program.entry == 1

    @given(terminating_programs())
    @settings(max_examples=25, deadline=None)
    def test_random_programs_roundtrip(self, program):
        again = roundtrip(program)
        assert again.code == program.code
        assert again.entry == program.entry
        assert dict(again.memory) == dict(program.memory)
