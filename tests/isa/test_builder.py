"""Unit tests for the ProgramBuilder DSL."""

import pytest

from repro.errors import AssemblerError
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Opcode
from repro.isa.registers import RA, SP


class TestEmission:
    def test_mnemonic_dispatch(self):
        b = ProgramBuilder()
        b.li("r1", 5)
        b.add("r2", "r1", "r1")
        b.halt()
        program = b.build()
        assert [i.op for i in program.code] == [Opcode.LI, Opcode.ADD, Opcode.HALT]

    def test_keyword_mnemonics_use_trailing_underscore(self):
        b = ProgramBuilder()
        b.and_("r1", "r2", "r3")
        b.or_("r4", "r5", "r6")
        b.halt()
        program = b.build()
        assert program.code[0].op is Opcode.AND
        assert program.code[1].op is Opcode.OR

    def test_registers_accept_names_and_numbers(self):
        b = ProgramBuilder()
        b.mov(3, "sp")
        b.halt()
        assert b.build().code[0].rs == SP

    def test_unknown_attribute_raises(self):
        b = ProgramBuilder()
        with pytest.raises(AttributeError):
            b.frobnicate("r1")

    def test_wrong_operand_count(self):
        b = ProgramBuilder()
        with pytest.raises(AssemblerError):
            b.add("r1", "r2")

    def test_memory_operand_convention(self):
        b = ProgramBuilder()
        b.lw("r1", "r2", 8)
        b.sw("r1", "sp", -4)
        b.halt()
        program = b.build()
        assert (program.code[0].rs, program.code[0].imm) == (2, 8)
        assert (program.code[1].rs, program.code[1].imm) == (SP, -4)


class TestLabels:
    def test_forward_and_backward_references(self):
        b = ProgramBuilder()
        b.label("start")
        b.beq("r1", "r0", "end")  # forward
        b.j("start")  # backward
        b.label("end")
        b.halt()
        program = b.build()
        assert program.code[0].target == 2
        assert program.code[1].target == 0

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder()
        b.label("x")
        with pytest.raises(AssemblerError):
            b.label("x")

    def test_unresolved_label_rejected_at_build(self):
        b = ProgramBuilder()
        b.j("nowhere")
        b.halt()
        with pytest.raises(AssemblerError):
            b.build()

    def test_entry_defaults_to_main(self):
        b = ProgramBuilder()
        b.halt()
        b.label("main")
        b.nop()
        b.halt()
        assert b.build().entry == 1

    def test_explicit_entry(self):
        b = ProgramBuilder()
        b.halt()
        b.label("go")
        b.halt()
        assert b.build(entry="go").entry == 1
        assert b.build(entry=0).entry == 0

    def test_pc_property(self):
        b = ProgramBuilder()
        assert b.pc == 0
        b.nop()
        assert b.pc == 1


class TestData:
    def test_alloc_returns_address(self):
        b = ProgramBuilder(data_base=0x50)
        addr = b.alloc("tbl", [1, 0, 3])
        b.halt()
        program = b.build()
        assert addr == 0x50
        assert program.memory == {0x50: 1, 0x52: 3}
        assert b.data_addr("tbl") == 0x50

    def test_space_advances_cursor(self):
        b = ProgramBuilder(data_base=0)
        first = b.space("buf", 10)
        second = b.alloc("tbl", [5])
        b.halt()
        assert (first, second) == (0, 10)
        assert b.build().memory == {10: 5}

    def test_label_as_immediate(self):
        b = ProgramBuilder(data_base=0x30)
        b.alloc("tbl", [9])
        b.li("r1", "tbl")
        b.lw("r2", "zero", "tbl")
        b.halt()
        program = b.build()
        assert program.code[0].imm == 0x30
        assert program.code[1].imm == 0x30

    def test_poke(self):
        b = ProgramBuilder()
        b.poke(7, 42)
        b.poke(8, 1)
        b.poke(8, 0)  # zero removes
        b.halt()
        assert b.build().memory == {7: 42}

    def test_negative_space_rejected(self):
        b = ProgramBuilder()
        with pytest.raises(AssemblerError):
            b.space("bad", -1)


class TestMacros:
    def test_push_pop_symmetry(self):
        b = ProgramBuilder()
        b.push("r1")
        b.pop("r2")
        b.halt()
        ops = [i.op for i in b.build().code]
        assert ops == [Opcode.ADDI, Opcode.SW, Opcode.LW, Opcode.ADDI, Opcode.HALT]

    def test_call_ret(self):
        b = ProgramBuilder()
        b.call("fn")
        b.halt()
        b.label("fn")
        b.ret()
        program = b.build()
        assert program.code[0].op is Opcode.JAL
        assert program.code[0].target == 2
        assert program.code[2].op is Opcode.JR
        assert program.code[2].rs == RA

    def test_comment_is_noop(self):
        b = ProgramBuilder()
        b.comment("nothing to see")
        b.halt()
        assert len(b.build()) == 1
