"""Unit tests for the textual assembler."""

import pytest

from repro.errors import AssemblerError
from repro.isa.asm import assemble
from repro.isa.instructions import Opcode


class TestBasicAssembly:
    def test_minimal_program(self):
        program = assemble("halt")
        assert len(program) == 1
        assert program.code[0].op is Opcode.HALT
        assert program.entry == 0

    def test_labels_resolve_to_pcs(self):
        program = assemble(
            """
            main:   li r1, 3
            loop:   addi r1, r1, -1
                    bne r1, zero, loop
                    halt
            """
        )
        assert program.symbols["main"] == 0
        assert program.symbols["loop"] == 1
        assert program.code[2].target == 1

    def test_entry_defaults_to_main(self):
        program = assemble(
            """
            helper: halt
            main:   j helper
            """
        )
        assert program.entry == 1

    def test_entry_zero_without_main(self):
        program = assemble("nop\nhalt")
        assert program.entry == 0

    def test_label_on_own_line(self):
        program = assemble(
            """
            start:
                    nop
                    halt
            """
        )
        assert program.symbols["start"] == 0

    def test_multiple_labels_same_pc(self):
        program = assemble(
            """
            a:
            b:      halt
            """
        )
        assert program.symbols["a"] == program.symbols["b"] == 0

    def test_comments_both_styles(self):
        program = assemble("nop # trailing\n; whole line\nhalt ; other style")
        assert len(program) == 2


class TestOperandForms:
    def test_memory_operands(self):
        program = assemble(
            """
            lw r1, 8(r2)
            sw r1, -4(sp)
            lw r3, (r4)
            halt
            """
        )
        load = program.code[0]
        assert (load.rd, load.rs, load.imm) == (1, 2, 8)
        store = program.code[1]
        assert (store.rt, store.rs, store.imm) == (1, 29, -4)
        assert program.code[2].imm == 0

    def test_hex_and_negative_immediates(self):
        program = assemble("li r1, 0x10\nli r2, -3\nhalt")
        assert program.code[0].imm == 16
        assert program.code[1].imm == -3

    def test_symbolic_immediates_from_data(self):
        program = assemble(
            """
            main:   li r1, table
                    lw r2, table(zero)
                    halt
                    .data 0x100
            table:  .word 7, 8
            """
        )
        assert program.code[0].imm == 0x100
        assert program.code[1].imm == 0x100
        assert program.memory[0x100] == 7
        assert program.memory[0x101] == 8

    def test_register_aliases(self):
        program = assemble("mov sp, fp\njr ra\nhalt")
        assert (program.code[0].rd, program.code[0].rs) == (29, 30)
        assert program.code[1].rs == 31


class TestDataSection:
    def test_word_values(self):
        program = assemble(
            """
            halt
            .data 10
            .word 1, 2, 3
            """
        )
        assert program.memory == {10: 1, 11: 2, 12: 3}

    def test_zero_words_stay_sparse(self):
        program = assemble("halt\n.data 5\n.word 0, 9, 0")
        assert program.memory == {6: 9}

    def test_space_reserves_layout(self):
        program = assemble(
            """
            halt
            .data 100
            buf:    .space 4
            next:   .word 1
            """
        )
        assert program.symbols["buf"] == 100
        assert program.symbols["next"] == 104
        assert program.memory == {104: 1}

    def test_data_labels_distinct_from_text(self):
        program = assemble(
            """
            main:   j main
                    halt
            .data 0x20
            d:      .word 5
            """
        )
        assert program.symbols["d"] == 0x20

    def test_back_to_text(self):
        program = assemble(
            """
            nop
            .data 0
            .word 3
            .text
            halt
            """
        )
        assert len(program) == 2
        assert program.memory == {0: 3}


class TestErrors:
    @pytest.mark.parametrize(
        "source, fragment",
        [
            ("frob r1, r2", "unknown mnemonic"),
            ("add r1, r2", "expects 3 operand"),
            ("li r1, undefined_sym\nhalt", "undefined symbol"),
            ("a: nop\na: halt", "duplicate label"),
            (".word 1", ".word outside"),
            (".space 1", ".space outside"),
            (".data 0\nnop", "instruction inside .data"),
            (".bogus", "unknown directive"),
            ("lw r1, 4[r2]\nhalt", "bad memory operand"),
            ("li r99, 1\nhalt", "invalid register"),
            (".data zzz", "bad .data address"),
            (".data 0\n.space -1", "bad .space count"),
        ],
    )
    def test_rejects(self, source, fragment):
        with pytest.raises(AssemblerError, match=fragment):
            assemble(source)

    def test_error_carries_line_number(self):
        with pytest.raises(AssemblerError, match="line 2"):
            assemble("nop\nbogus r1\nhalt")

    def test_unresolved_branch_target(self):
        with pytest.raises(AssemblerError, match="undefined symbol"):
            assemble("beq r1, r2, nowhere\nhalt")
