"""Shared fixtures for distiller tests."""

import pytest

from repro.isa.asm import assemble
from repro.profiling import profile_program

#: A loop with a rarely-taken side path, a stable load, a never-taken
#: validation chain (assertion-conversion + DCE fodder), and a dead-ish
#: condition chain — one of everything the distiller optimizes.
RICH_SOURCE = """
main:   li r1, 200
        li r3, 7
loop:   addi r1, r1, -1
        seq r9, r1, r3
        bne r9, zero, rare
back:   lw r5, 500(zero)
        add r6, r6, r5
        # validation chain: overflow guard that never fires; the whole
        # chain dies once the guard branch is asserted away.
        srli r10, r6, 20
        slli r11, r1, 2
        add r10, r10, r11
        slti r12, r10, 100000
        beq r12, zero, panic
        bne r1, zero, loop
        sw r6, 600(zero)
        halt
rare:   addi r2, r2, 1
        addi r2, r2, 2
        addi r2, r2, 3
        j back
panic:  li r6, -1
        sw r6, 600(zero)
        halt
dead:   addi r7, r7, 1
        j back
        .data 500
        .word 13
"""


@pytest.fixture
def rich_program():
    return assemble(RICH_SOURCE, name="rich")


@pytest.fixture
def rich_profile(rich_program):
    return profile_program(rich_program)
