"""Per-pass unit tests for the distiller."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dominators import DominatorTree
from repro.analysis.liveness import compute_liveness
from repro.analysis.loops import find_loops
from repro.config import DistillConfig
from repro.distill.ir import TRAP_BLOCK, lift_to_ir
from repro.distill.passes.branch_removal import run_branch_removal
from repro.distill.passes.cold_code import prune_unreachable, run_cold_code
from repro.distill.passes.dce import run_dce
from repro.distill.passes.fork_placement import run_fork_placement
from repro.distill.passes.value_spec import run_value_spec
from repro.isa.asm import assemble
from repro.isa.instructions import Opcode
from repro.profiling import profile_program


def analyzed(source, name="t"):
    program = assemble(source, name=name)
    profile = profile_program(program)
    cfg = build_cfg(program)
    return {
        "program": program,
        "profile": profile,
        "cfg": cfg,
        "domtree": DominatorTree(cfg),
        "loops": find_loops(cfg, DominatorTree(cfg)),
        "liveness": compute_liveness(cfg),
        "ir": lift_to_ir(program, cfg),
    }


class TestValueSpec:
    SOURCE = """
    main:   li r1, 20
    loop:   lw r2, 500(zero)     # stable
            lw r3, 600(zero)     # stored-to below
            sw r1, 600(zero)
            addi r1, r1, -1
            bne r1, zero, loop
            halt
            .data 500
            .word 42
    """

    def test_specializes_only_safe_loads(self):
        ctx = analyzed(self.SOURCE)
        stats = run_value_spec(ctx["ir"], ctx["profile"], DistillConfig())
        assert stats.candidates == 2
        assert stats.specialized == 1
        block = ctx["ir"].block("B1")
        assert block.instrs[0].instr.op is Opcode.LI
        assert block.instrs[0].instr.imm == 42
        assert block.instrs[1].instr.op is Opcode.LW

    def test_min_count_blocks_specialization(self):
        ctx = analyzed(self.SOURCE)
        config = DistillConfig(value_spec_min_count=1000)
        stats = run_value_spec(ctx["ir"], ctx["profile"], config)
        assert stats.specialized == 0

    def test_provenance_preserved(self):
        ctx = analyzed(self.SOURCE)
        run_value_spec(ctx["ir"], ctx["profile"], DistillConfig())
        assert ctx["ir"].block("B1").instrs[0].orig_pc == 1


class TestBranchRemoval:
    BIASED = """
    main:   li r1, 100
    loop:   addi r1, r1, -1
            beq r1, r0, done      # rarely taken until the end
            j loop
    done:   halt
    """

    #: The rare branch targets a side path *inside* the loop, so it can
    #: be asserted without stranding the master.
    RARE_TAKEN = """
    main:   li r1, 100
    loop:   addi r1, r1, -1
            seq r9, r1, r0
            bne r9, zero, rare    # taken once in 100
    back:   bne r1, zero, loop
            halt
    rare:   addi r2, r2, 1
            j back
    """

    def test_asserts_not_taken_branch(self):
        ctx = analyzed(self.RARE_TAKEN)
        config = DistillConfig(branch_bias_threshold=0.99, min_branch_count=8)
        stats = run_branch_removal(
            ctx["ir"], ctx["profile"], ctx["cfg"], ctx["domtree"], ctx["loops"], config
        )
        assert stats.asserted_not_taken == 1
        # The branch is gone from its block.
        block_ops = [
            d.instr.op for d in ctx["ir"].block("B1").instrs
        ]
        assert Opcode.BNE not in block_ops

    def test_sole_loop_exit_protected(self):
        """A ~always-not-taken branch that is the loop's only exit must
        survive: asserting it would strand the master in the loop."""
        source = """
        main:   li r1, 100
        loop:   addi r1, r1, -1
                seq r9, r1, r0
                bne r9, zero, out     # the only way out of the loop
                j loop
        out:    halt
        """
        ctx = analyzed(source)
        config = DistillConfig(branch_bias_threshold=0.99, min_branch_count=8)
        stats = run_branch_removal(
            ctx["ir"], ctx["profile"], ctx["cfg"], ctx["domtree"], ctx["loops"], config
        )
        assert stats.skipped_loop_exits == 1
        assert stats.asserted_not_taken == 0
        assert ctx["ir"].block("B1").last.instr.op is Opcode.BNE

    def test_leaves_low_bias_branches(self):
        source = """
        main:   li r1, 10
        loop:   addi r1, r1, -1
                andi r2, r1, 1
                beq r2, zero, even
                addi r3, r3, 1
        even:   bne r1, zero, loop
                halt
        """
        ctx = analyzed(source)
        config = DistillConfig(branch_bias_threshold=0.9, min_branch_count=4)
        stats = run_branch_removal(
            ctx["ir"], ctx["profile"], ctx["cfg"], ctx["domtree"], ctx["loops"], config
        )
        assert stats.asserted_taken == 0
        assert stats.asserted_not_taken == 0

    def test_back_edge_protected(self):
        """A loop's continue branch is ~always taken but must survive."""
        source = """
        main:   li r1, 1000
        loop:   addi r1, r1, -1
                bne r1, zero, loop
                halt
        """
        ctx = analyzed(source)
        config = DistillConfig(branch_bias_threshold=0.9, min_branch_count=4)
        stats = run_branch_removal(
            ctx["ir"], ctx["profile"], ctx["cfg"], ctx["domtree"], ctx["loops"], config
        )
        assert stats.skipped_back_edges == 1
        assert ctx["ir"].block("B1").last.instr.op is Opcode.BNE

    def test_min_count_guard(self):
        ctx = analyzed(self.RARE_TAKEN)
        config = DistillConfig(
            branch_bias_threshold=0.99, min_branch_count=10_000
        )
        stats = run_branch_removal(
            ctx["ir"], ctx["profile"], ctx["cfg"], ctx["domtree"], ctx["loops"], config
        )
        assert stats.asserted_not_taken == 0


class TestColdCode:
    SOURCE = """
    main:   li r1, 10
    loop:   addi r1, r1, -1
            beq r1, r0, done
            j loop
    cold:   addi r9, r9, 1       # never executed
            j loop
    done:   halt
    """

    def test_never_executed_block_removed(self):
        ctx = analyzed(self.SOURCE)
        stats = run_cold_code(ctx["ir"], ctx["profile"], DistillConfig())
        assert stats.blocks_removed == 1
        assert "B4" not in ctx["ir"].block_names()

    def test_entry_protected_even_if_cold(self):
        program = assemble("main: halt")
        # A profile from a different (empty) run: entry never counted.
        from repro.profiling.profile_data import Profile

        profile = Profile(program_name="main", code_length=1)
        cfg = build_cfg(program)
        ir = lift_to_ir(program, cfg)
        run_cold_code(ir, profile, DistillConfig())
        assert "B0" in ir.block_names()

    def test_prune_unreachable(self):
        source = """
        main:   j hot
        orphan: addi r9, r9, 1
                j hot
        hot:    halt
        """
        ctx = analyzed(source)
        removed = prune_unreachable(ctx["ir"])
        assert removed == 1
        assert "B1" not in ctx["ir"].block_names()


class TestForkPlacement:
    LOOP = """
    main:   li r1, 50
    loop:   addi r1, r1, -1
            add r2, r2, r1
            bne r1, zero, loop
            halt
    """

    def _find_fork(self, ir):
        for block in ir.blocks:
            for dinstr in block.instrs:
                if dinstr.instr.op is Opcode.FORK:
                    return dinstr
        raise AssertionError("no fork inserted")

    def test_places_fork_at_loop_header(self):
        ctx = analyzed(self.LOOP)
        config = DistillConfig(target_task_size=6)
        stats = run_fork_placement(
            ctx["ir"], ctx["profile"], ctx["cfg"], ctx["loops"],
            ctx["liveness"], config,
        )
        assert stats.anchors == [1]
        fork = self._find_fork(ctx["ir"])
        assert fork.instr.target == 1
        (plan,) = stats.plans
        assert plan.stride >= 1
        assert plan.spacing == pytest.approx(3.0, rel=0.2)

    def test_stride_countdown_emitted(self):
        ctx = analyzed(self.LOOP)
        stats = run_fork_placement(
            ctx["ir"], ctx["profile"], ctx["cfg"], ctx["loops"],
            ctx["liveness"], DistillConfig(target_task_size=6),
        )
        (plan,) = stats.plans
        assert plan.stride == 2  # spacing 3, target 6
        assert plan.scratch_reg is not None
        header = ctx["ir"].block("B1")
        ops = [d.instr.op for d in header.instrs]
        assert ops == [Opcode.ADDI, Opcode.BGE, Opcode.FORK, Opcode.LI]
        # The countdown's scratch register is untouched by the program.
        assert plan.scratch_reg not in {1, 2}

    def test_fork_carries_original_liveness(self):
        ctx = analyzed(self.LOOP)
        run_fork_placement(
            ctx["ir"], ctx["profile"], ctx["cfg"], ctx["loops"],
            ctx["liveness"], DistillConfig(target_task_size=6),
        )
        fork = self._find_fork(ctx["ir"])
        assert 1 in fork.uses()  # r1 is live into the loop
        assert 2 in fork.uses()  # r2 accumulates around the back edge

    def test_no_candidates_no_forks(self):
        ctx = analyzed("main: li r1, 1\nhalt")
        stats = run_fork_placement(
            ctx["ir"], ctx["profile"], ctx["cfg"], ctx["loops"],
            ctx["liveness"], DistillConfig(),
        )
        assert stats.anchors == []

    def test_max_anchors_respected(self):
        source = "\n".join(
            ["main: li r1, 5"]
            + [
                f"l{i}: addi r1, r1, 0\n addi r2, r2, 1\n"
                f" seq r9, r2, r0\n bne r9, zero, l{i}"
                for i in range(6)
            ]
            + ["halt"]
        )
        ctx = analyzed(source)
        config = DistillConfig(target_task_size=2, max_anchors=3)
        stats = run_fork_placement(
            ctx["ir"], ctx["profile"], ctx["cfg"], ctx["loops"],
            ctx["liveness"], config,
        )
        assert len(stats.anchors) <= 3

    def test_expected_task_size_near_target(self):
        ctx = analyzed(self.LOOP)
        stats = run_fork_placement(
            ctx["ir"], ctx["profile"], ctx["cfg"], ctx["loops"],
            ctx["liveness"], DistillConfig(target_task_size=6),
        )
        # spacing 3, stride 2 -> forks every ~6 instructions.
        assert stats.expected_task_size == pytest.approx(6.0, rel=0.25)


class TestDce:
    def test_removes_dead_chain(self):
        source = """
        main:   li r1, 5
                li r2, 6        # dead: r2 never used
                add r3, r1, r1  # dead: r3 never used
                sw r1, 100(zero)
                halt
        """
        ctx = analyzed(source)
        stats = run_dce(ctx["ir"], DistillConfig())
        assert stats.instrs_removed == 2
        ops = [d.instr.op for d in ctx["ir"].block("B0").instrs]
        assert ops == [Opcode.LI, Opcode.SW, Opcode.HALT]

    def test_iterates_to_fixpoint(self):
        source = """
        main:   li r1, 5        # feeds only dead r2
                add r2, r1, r1  # dead
                sw r0, 100(zero)
                halt
        """
        ctx = analyzed(source)
        stats = run_dce(ctx["ir"], DistillConfig())
        assert stats.instrs_removed == 2
        assert stats.iterations >= 2

    def test_never_removes_side_effects(self):
        source = """
        main:   sw r1, 100(zero)
                jal fn
                halt
        fn:     jr ra
        """
        ctx = analyzed(source)
        before = ctx["ir"].instruction_count()
        run_dce(ctx["ir"], DistillConfig())
        assert ctx["ir"].instruction_count() == before

    def test_fork_uses_keep_values_alive(self):
        source = """
        main:   li r1, 50
        loop:   addi r1, r1, -1
                add r2, r2, r1
                bne r1, zero, loop
                halt
        """
        ctx = analyzed(source)
        run_fork_placement(
            ctx["ir"], ctx["profile"], ctx["cfg"], ctx["loops"],
            ctx["liveness"], DistillConfig(target_task_size=6),
        )
        run_dce(ctx["ir"], DistillConfig())
        # r2's accumulation is dead in the distilled program's own dataflow
        # (nothing after the loop reads it) but the fork's use set keeps it.
        ops = [
            d.instr.op
            for block in ctx["ir"].blocks
            for d in block.instrs
        ]
        assert Opcode.ADD in ops

    def test_removes_nops(self):
        ctx = analyzed("main: nop\nnop\nsw r0, 1(zero)\nhalt")
        stats = run_dce(ctx["ir"], DistillConfig())
        assert stats.instrs_removed == 2
