"""Property test: distillation is statically sound on random programs.

For any terminating program, the distiller either refuses cleanly
(``DistillError``) or produces an artifact the static checker accepts —
and with ``verify_after_each_pass`` on, every *intermediate* IR snapshot
passes its checks too (a ``CheckFailure`` from any pass fails the test).
"""

import dataclasses

from hypothesis import HealthCheck, given, settings

from repro.analysis.checker import check_distillation, check_program
from repro.config import DistillConfig
from repro.distill.distiller import Distiller
from repro.errors import DistillError
from repro.profiling import profile_program
from tests.strategies import terminating_programs

#: Aggressive knobs so small random programs actually get transformed
#: (the defaults are tuned for the workload suite's sizes).
AGGRESSIVE = dataclasses.replace(
    DistillConfig(),
    target_task_size=12,
    branch_bias_threshold=0.9,
    min_branch_count=2,
    value_spec_min_count=2,
    store_elim_min_count=2,
    verify_after_each_pass=True,
)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(terminating_programs())
def test_distillation_is_statically_sound(program):
    assert check_program(program).ok
    profile = profile_program(program)
    try:
        # CheckFailure here means a pass broke a declared invariant on
        # this input — exactly what the property forbids.  DistillError
        # is a legitimate refusal (e.g. nothing worth distilling).
        result = Distiller(AGGRESSIVE).distill(program, profile)
    except DistillError:
        return
    report = check_distillation(
        program, result.distilled, result.pc_map
    )
    assert report.ok, report.render()
