"""Integration tests for the full distillation pipeline."""

import pytest
from hypothesis import given, settings

from repro.config import DistillConfig
from repro.distill import Distiller, distill_with_default_profile
from repro.errors import DistillError
from repro.isa.asm import assemble
from repro.isa.instructions import Opcode
from repro.machine.interpreter import count_dynamic_instructions, run_to_halt
from repro.profiling import profile_program

from tests.strategies import terminating_programs

AGGRESSIVE = DistillConfig(
    target_task_size=30, branch_bias_threshold=0.99, min_branch_count=8,
    value_spec_min_count=4,
)


class TestPipeline:
    def test_produces_valid_program(self, rich_program, rich_profile):
        result = Distiller(AGGRESSIVE).distill(rich_program, rich_profile)
        assert result.distilled.halts
        assert len(result.distilled.code) > 0
        assert result.report.original_static == len(rich_program.code)
        assert result.report.distilled_static == len(result.distilled.code)

    def test_distilled_is_shorter_dynamically(self, rich_program, rich_profile):
        """The whole point: the distilled program runs fewer instructions."""
        result = Distiller(AGGRESSIVE).distill(rich_program, rich_profile)
        original_len = count_dynamic_instructions(rich_program)
        distilled_len = count_dynamic_instructions(result.distilled)
        assert distilled_len < original_len

    def test_pc_map_covers_entry_and_anchors(self, rich_program, rich_profile):
        result = Distiller(AGGRESSIVE).distill(rich_program, rich_profile)
        pc_map = result.pc_map
        assert pc_map.is_anchor(rich_program.entry)
        for anchor in result.report.anchors:
            assert pc_map.is_anchor(anchor)
            resume = pc_map.resume_pc(anchor)
            assert 0 <= resume <= len(result.distilled.code)

    def test_resume_pcs_follow_forks(self, rich_program, rich_profile):
        result = Distiller(AGGRESSIVE).distill(rich_program, rich_profile)
        for anchor in result.report.anchors:
            resume = result.pc_map.resume_pc(anchor)
            fork = result.distilled.code[resume - 1]
            assert fork.op is Opcode.FORK
            assert fork.target == anchor

    def test_non_anchor_resume_raises(self, rich_program, rich_profile):
        result = Distiller(AGGRESSIVE).distill(rich_program, rich_profile)
        with pytest.raises(DistillError):
            result.pc_map.resume_pc(10_000)

    def test_report_describe(self, rich_program, rich_profile):
        result = Distiller(AGGRESSIVE).distill(rich_program, rich_profile)
        text = result.report.describe()
        assert "static" in text and "anchors" in text

    def test_default_profile_helper(self, rich_program):
        result = distill_with_default_profile(rich_program, AGGRESSIVE)
        assert result.distilled.halts


class TestAblationFlags:
    def test_without_pass(self):
        config = AGGRESSIVE.without_pass("value_spec")
        assert not config.enable_value_spec
        assert config.enable_dce

    def test_without_unknown_pass(self):
        with pytest.raises(DistillError):
            AGGRESSIVE.without_pass("nonsense")

    def test_disabling_passes_grows_output(self, rich_program, rich_profile):
        full = Distiller(AGGRESSIVE).distill(rich_program, rich_profile)
        bare = Distiller(
            AGGRESSIVE.without_pass("branch_removal")
            .without_pass("cold_code")
            .without_pass("value_spec")
            .without_pass("dce")
        ).distill(rich_program, rich_profile)
        assert bare.report.distilled_static >= full.report.distilled_static

    def test_everything_disabled_still_forks(self, rich_program, rich_profile):
        config = AGGRESSIVE
        for name in ("branch_removal", "cold_code", "value_spec", "dce",
                     "jump_threading"):
            config = config.without_pass(name)
        result = Distiller(config).distill(rich_program, rich_profile)
        assert any(i.op is Opcode.FORK for i in result.distilled.code)


class TestDistilledSemanticsOnHotPath:
    def test_distilled_runs_standalone(self, rich_program, rich_profile):
        """fork behaves as nop sequentially, so the distilled binary runs."""
        result = Distiller(AGGRESSIVE).distill(rich_program, rich_profile)
        outcome = run_to_halt(result.distilled, max_steps=1_000_000)
        assert outcome.halted

    def test_hot_path_results_match(self, rich_program, rich_profile):
        """On an input that stays on trained paths, the distilled program
        computes the same observable result (the final store)."""
        result = Distiller(AGGRESSIVE).distill(rich_program, rich_profile)
        original = run_to_halt(rich_program)
        distilled = run_to_halt(result.distilled, max_steps=1_000_000)
        assert distilled.state.load(600) == original.state.load(600)

    @given(terminating_programs())
    @settings(max_examples=15, deadline=None)
    def test_distillation_never_crashes(self, program):
        profile = profile_program(program, max_steps=2_000_000)
        result = Distiller(DistillConfig(target_task_size=10)).distill(
            program, profile
        )
        assert result.distilled.halts
        assert result.pc_map.is_anchor(program.entry)
