"""Tests for the dead-store elimination pass."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.config import DistillConfig
from repro.distill import Distiller
from repro.distill.ir import lift_to_ir
from repro.distill.passes.store_elim import run_store_elim
from repro.isa.asm import assemble
from repro.isa.instructions import Opcode
from repro.machine import run_to_halt
from repro.mssp import MsspEngine
from repro.profiling import profile_program

#: Writes an output buffer nobody reads, and a cell that IS read back.
SOURCE = """
main:   li r1, 30
loop:   addi r1, r1, -1
        sw r1, 0x600(zero)      # read back below: must survive
        lw r2, 0x600(zero)
        add r3, r3, r2
        add r4, r1, r3
        sw r4, 0x700(zero)      # write-only output cell: eliminable? no --
        addi r5, r1, 0x700      # varying address output buffer:
        sw r3, 0(r5)            # a[0x700+r1]: write-only, eliminable
        bne r1, zero, loop
        sw r3, 0x900(zero)      # final result: executed once (min_count)
        halt
"""


def prepared_ir(config=None):
    program = assemble(SOURCE)
    profile = profile_program(program)
    cfg = build_cfg(program)
    ir = lift_to_ir(program, cfg)
    stats = run_store_elim(ir, profile, config or DistillConfig())
    return program, profile, ir, stats


class TestPass:
    def test_eliminates_only_unread_stores(self):
        program, profile, ir, stats = prepared_ir()
        assert stats.candidates == 4
        # sw to 0x600 is read back -> kept; the buffer store at 0(r5)
        # and the fixed cell 0x700 are never loaded -> eliminated; the
        # final 0x900 store executed once (< min_count) -> kept.
        assert stats.eliminated == 2
        remaining = [
            d.instr.imm
            for block in ir.blocks
            for d in block.instrs
            if d.instr.op is Opcode.SW
        ]
        assert 0x600 in remaining  # the read-back store survived

    def test_min_count_guard(self):
        _, _, _, stats = prepared_ir(
            DistillConfig(store_elim_min_count=1000)
        )
        assert stats.eliminated == 0

    def test_profile_dead_store_query(self):
        program, profile, _, _ = prepared_ir()
        # pc 2 is the read-back store.
        assert profile.dead_store_addresses(2) is None
        # pc 6 is the fixed write-only cell.
        assert profile.dead_store_addresses(6) == {0x700}


class TestEndToEnd:
    def test_distilled_omits_store_yet_mssp_equivalent(self):
        program = assemble(SOURCE)
        profile = profile_program(program)
        result = Distiller(
            DistillConfig(target_task_size=15, min_branch_count=4)
        ).distill(program, profile)
        distilled_stores = sum(
            1 for i in result.distilled.code if i.op is Opcode.SW
        )
        original_stores = sum(
            1 for i in program.code if i.op is Opcode.SW
        )
        assert distilled_stores < original_stores
        outcome = MsspEngine(program, result).run_and_check()
        # Architected state still has the full output buffer (slaves
        # execute the original stores).
        reference = run_to_halt(program)
        assert outcome.final_state.load(0x700 + 7) == (
            reference.state.load(0x700 + 7)
        )

    def test_elimination_does_not_raise_squash_rate(self):
        program = assemble(SOURCE)
        profile = profile_program(program)
        with_pass = Distiller(
            DistillConfig(target_task_size=15, min_branch_count=4)
        ).distill(program, profile)
        without_pass = Distiller(
            DistillConfig(
                target_task_size=15, min_branch_count=4
            ).without_pass("store_elim")
        ).distill(program, profile)
        rate_with = MsspEngine(program, with_pass).run().counters.squash_rate
        rate_without = MsspEngine(
            program, without_pass
        ).run().counters.squash_rate
        assert rate_with <= rate_without + 1e-9
