"""Tests for IR lifting, block removal, and reachability."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.distill.ir import TRAP_BLOCK, lift_to_ir, block_name_for
from repro.errors import DistillError
from repro.isa.asm import assemble
from repro.isa.instructions import Opcode


def lift(source):
    program = assemble(source)
    return lift_to_ir(program, build_cfg(program))


class TestLifting:
    def test_block_names_and_targets(self):
        ir = lift(
            """
            main:   li r1, 3
            loop:   addi r1, r1, -1
                    bne r1, zero, loop
                    halt
            """
        )
        names = {block.name for block in ir.blocks}
        assert names == {"B0", "B1", "B3"}
        loop_block = ir.block("B1")
        assert loop_block.last.instr.target == "B1"  # symbolic now
        assert loop_block.fallthrough == "B3"

    def test_entry_name(self):
        ir = lift("main: halt")
        assert ir.entry_name == "B0"

    def test_provenance(self):
        ir = lift("li r1, 1\naddi r1, r1, 1\nhalt")
        block = ir.block("B0")
        assert [d.orig_pc for d in block.instrs] == [0, 1, 2]

    def test_jal_rewritten_to_original_return_address(self):
        """Calls become li ra, <orig return pc> + j, so the master's
        link register holds original-program addresses."""
        ir = lift(
            """
            main:   jal fn
                    halt
            fn:     jr ra
            """
        )
        call_block = ir.block("B0")
        ops = [d.instr.op for d in call_block.instrs]
        assert ops == [Opcode.LI, Opcode.J]
        li, jmp = call_block.instrs
        assert li.instr.imm == 1          # original return pc
        assert jmp.instr.target == "B2"
        assert not call_block.requires_adjacent_fallthrough
        assert call_block.fallthrough is None
        assert ir.call_return_pcs == [1]

    def test_unconditional_jump_has_no_fallthrough(self):
        ir = lift("main: j end\nmid: nop\nend: halt")
        assert ir.block("B0").fallthrough is None

    def test_fork_target_stays_numeric(self):
        ir = lift("fork 42\nhalt")
        assert ir.block("B0").instrs[0].instr.target == 42


class TestSuccessorNames:
    def test_branch_block(self):
        ir = lift(
            """
            main:   beq r1, r2, t
                    nop
            t:      halt
            """
        )
        succ = ir.block("B0").successor_names([])
        assert set(succ) == {"B2", "B1"}

    def test_jr_uses_return_sites(self):
        ir = lift(
            """
            main:   jal fn
                    halt
            fn:     jr ra
            """
        )
        sites = ir.return_site_names()
        assert sites == ["B1"]
        assert ir.block("B2").successor_names(sites) == ["B1"]


class TestRemoveBlocks:
    def test_remove_retargets_to_trap(self):
        ir = lift(
            """
            main:   beq r1, r2, cold
                    halt
            cold:   nop
                    halt
            """
        )
        ir.remove_blocks({"B2"})
        assert ir.block("B0").last.instr.target == TRAP_BLOCK
        trap = ir.block(TRAP_BLOCK)
        assert trap.instrs[0].instr.op is Opcode.HALT

    def test_remove_fallthrough_retargets(self):
        ir = lift(
            """
            main:   beq r1, r2, t
            mid:    nop
            t:      halt
            """
        )
        ir.remove_blocks({"B1"})
        assert ir.block("B0").fallthrough == TRAP_BLOCK

    def test_cannot_remove_entry(self):
        ir = lift("main: halt")
        with pytest.raises(DistillError):
            ir.remove_blocks({"B0"})

    def test_return_site_removable_with_translation(self):
        """With jr translation there is no physical-adjacency constraint;
        a removed return site just disappears from the jr table (the
        master traps there and the engine recovers)."""
        ir = lift(
            """
            main:   jal fn
                    halt
            fn:     jr ra
            """
        )
        ir.remove_blocks({"B1"})
        assert "B1" not in ir.block_names()
        assert ir.return_site_names() == []

    def test_reachability(self):
        ir = lift(
            """
            main:   j end
            dead:   nop
            end:    halt
            """
        )
        assert ir.reachable_names() == {"B0", "B2"}

    def test_instruction_count(self):
        ir = lift("nop\nnop\nhalt")
        assert ir.instruction_count() == 3

    def test_unknown_block_lookup(self):
        ir = lift("halt")
        with pytest.raises(DistillError):
            ir.block("nope")

    def test_block_name_for(self):
        assert block_name_for(17) == "B17"
