"""Validation tests for the configuration dataclasses."""

import dataclasses

import pytest

from repro.config import (
    BaselineConfig,
    DistillConfig,
    MsspConfig,
    OOO_BASELINE,
    SEQUENTIAL_BASELINE,
    TimingConfig,
)
from repro.errors import DistillError, TimingError


class TestDistillConfig:
    def test_defaults_valid(self):
        DistillConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_task_size": 1},
            {"branch_bias_threshold": 0.4},
            {"branch_bias_threshold": 1.1},
            {"cold_threshold": -0.1},
            {"cold_threshold": 1.0},
            {"max_anchors": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(DistillError):
            DistillConfig(**kwargs)

    def test_without_pass_round_trip(self):
        config = DistillConfig()
        for name in ("branch_removal", "cold_code", "value_spec", "dce",
                     "jump_threading"):
            variant = config.without_pass(name)
            assert getattr(variant, f"enable_{name}") is False
            # Original untouched (frozen semantics).
            assert getattr(config, f"enable_{name}") is True

    def test_without_pass_unknown(self):
        with pytest.raises(DistillError):
            DistillConfig().without_pass("inlining")

    def test_hashable_for_caching(self):
        assert hash(DistillConfig()) == hash(DistillConfig())


class TestMsspConfig:
    def test_defaults_valid(self):
        config = MsspConfig()
        assert config.throttle_threshold is None
        assert config.checkpoint_mode == "cumulative"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_task_instrs": 0},
            {"max_master_instrs_per_task": 0},
            {"recovery_max_instrs": 0},
            {"max_total_instrs": 0},
            {"throttle_window": 0},
            {"throttle_chunk": 0},
            {"throttle_threshold": 0.0},
            {"throttle_threshold": 1.01},
            {"checkpoint_mode": "bogus"},
            {"runtime": "warp"},
            {"runtime": "inline"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            MsspConfig(**kwargs)

    def test_delta_mode_accepted(self):
        assert MsspConfig(checkpoint_mode="delta").checkpoint_mode == "delta"

    def test_runtime_choices_accepted(self):
        for runtime in (None, "eager", "thread", "process", "parallel"):
            assert MsspConfig(runtime=runtime).runtime == runtime

    def test_protected_regions_stored(self):
        config = MsspConfig(protected_regions=((1, 2), (5, 9)))
        assert config.protected_regions == ((1, 2), (5, 9))


class TestTimingConfig:
    def test_defaults_valid(self):
        TimingConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_slaves": 0},
            {"master_cpi": 0.0},
            {"slave_cpi": -1.0},
            {"spawn_latency": -1.0},
            {"commit_latency": -0.5},
            {"squash_penalty": -1.0},
            {"restart_latency": -1.0},
            {"checkpoint_word_latency": -0.1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(TimingError):
            TimingConfig(**kwargs)

    def test_scaled_latencies(self):
        base = TimingConfig(
            spawn_latency=10, commit_latency=4, squash_penalty=6,
            restart_latency=2, checkpoint_word_latency=0.5,
        )
        doubled = base.scaled_latencies(2.0)
        assert doubled.spawn_latency == 20
        assert doubled.commit_latency == 8
        assert doubled.squash_penalty == 12
        assert doubled.restart_latency == 4
        assert doubled.checkpoint_word_latency == 1.0
        # Non-latency fields unchanged.
        assert doubled.n_slaves == base.n_slaves
        assert doubled.master_cpi == base.master_cpi

    def test_scaled_latencies_rejects_negative(self):
        with pytest.raises(TimingError):
            TimingConfig().scaled_latencies(-1.0)

    def test_zero_scale_is_free_interconnect(self):
        free = TimingConfig().scaled_latencies(0.0)
        assert free.spawn_latency == 0.0
        assert free.commit_latency == 0.0


class TestBaselines:
    def test_builtin_baselines(self):
        assert SEQUENTIAL_BASELINE.cpi == 1.0
        assert OOO_BASELINE.cpi < SEQUENTIAL_BASELINE.cpi

    def test_rejects_nonpositive_cpi(self):
        with pytest.raises(TimingError):
            BaselineConfig(name="x", cpi=0.0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            SEQUENTIAL_BASELINE.cpi = 2.0
