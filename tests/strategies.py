"""Shared hypothesis strategies for the test suite.

Provides random instructions (for encode/decode and render/parse
round-trips) and random *terminating* programs (for differential testing
of MSSP against the sequential reference).

Termination is guaranteed by construction: generated programs consist of
straight-line ALU/memory code, forward-only branches, and counted loops
whose trip counts are fixed small constants, ending in ``halt``.
"""

from __future__ import annotations

import random
from typing import List

from hypothesis import strategies as st

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import (
    Format,
    Instruction,
    Opcode,
)
from repro.isa.program import Program

registers = st.integers(min_value=0, max_value=31)
immediates = st.integers(min_value=-(2 ** 31), max_value=2 ** 31 - 1)
big_immediates = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)
targets = st.integers(min_value=0, max_value=10_000)


@st.composite
def instructions(draw) -> Instruction:
    """A random well-formed instruction (targets are numeric)."""
    op = draw(st.sampled_from(list(Opcode)))
    fmt = op.format
    if fmt == Format.R3:
        return Instruction(
            op=op, rd=draw(registers), rs=draw(registers), rt=draw(registers)
        )
    if fmt == Format.I2:
        return Instruction(
            op=op, rd=draw(registers), rs=draw(registers), imm=draw(immediates)
        )
    if fmt == Format.LI:
        return Instruction(op=op, rd=draw(registers), imm=draw(big_immediates))
    if fmt == Format.MOV:
        return Instruction(op=op, rd=draw(registers), rs=draw(registers))
    if fmt == Format.LOAD:
        return Instruction(
            op=op, rd=draw(registers), rs=draw(registers), imm=draw(immediates)
        )
    if fmt == Format.STORE:
        return Instruction(
            op=op, rt=draw(registers), rs=draw(registers), imm=draw(immediates)
        )
    if fmt == Format.BR:
        return Instruction(
            op=op, rs=draw(registers), rt=draw(registers), target=draw(targets)
        )
    if fmt == Format.J:
        return Instruction(op=op, target=draw(targets))
    if fmt == Format.JR:
        return Instruction(op=op, rs=draw(registers))
    return Instruction(op=op)


_ALU_R3 = [
    Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.MOD, Opcode.AND,
    Opcode.OR, Opcode.XOR, Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.SLT,
    Opcode.SLE, Opcode.SEQ, Opcode.SNE,
]
_ALU_I2 = [
    Opcode.ADDI, Opcode.MULI, Opcode.ANDI, Opcode.ORI, Opcode.XORI,
    Opcode.SLLI, Opcode.SRLI, Opcode.SLTI,
]

#: Registers random programs compute in (r0 stays the architectural zero,
#: and high registers are reserved for loop counters / addressing).
_WORK_REGS = list(range(1, 12))
_DATA_BASE = 0x100
_DATA_WORDS = 32


def _emit_random_straightline(
    builder: ProgramBuilder, rng: random.Random, length: int
) -> None:
    """Emit ``length`` side-effect-bounded random instructions."""
    for _ in range(length):
        choice = rng.random()
        if choice < 0.55:
            op = rng.choice(_ALU_R3)
            builder._emit(op, (
                rng.choice(_WORK_REGS), rng.choice(_WORK_REGS),
                rng.choice(_WORK_REGS),
            ))
        elif choice < 0.75:
            op = rng.choice(_ALU_I2)
            builder._emit(op, (
                rng.choice(_WORK_REGS), rng.choice(_WORK_REGS),
                rng.randint(-64, 64),
            ))
        elif choice < 0.83:
            builder.li(rng.choice(_WORK_REGS), rng.randint(-1000, 1000))
        elif choice < 0.92:
            # Bounded load: address computed into r12 by masking.
            src = rng.choice(_WORK_REGS)
            builder.andi(12, src, _DATA_WORDS - 1)
            builder.addi(12, 12, _DATA_BASE)
            builder.lw(rng.choice(_WORK_REGS), 12, 0)
        else:
            # Bounded store, same masked addressing.
            src = rng.choice(_WORK_REGS)
            builder.andi(12, src, _DATA_WORDS - 1)
            builder.addi(12, 12, _DATA_BASE)
            builder.sw(rng.choice(_WORK_REGS), 12, 0)


@st.composite
def terminating_programs(draw) -> Program:
    """A random program guaranteed to halt.

    Shape: a counted outer loop (fixed trip count) around random
    straight-line bodies with optional forward branches and optional
    calls to a random leaf subroutine (exercising jal/jr and the
    distiller's return-address translation); always ends in ``halt``.
    Memory accesses are masked into a small data region so runs stay
    bounded and comparable.
    """
    seed = draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
    rng = random.Random(seed)
    builder = ProgramBuilder(name=f"random-{seed}")
    trip_count = rng.randint(1, 12)
    n_blocks = rng.randint(1, 4)
    has_subroutine = rng.random() < 0.5

    builder.alloc("data", [rng.randint(-100, 100) for _ in range(_DATA_WORDS)])
    # Data region lives at a fixed address for masked access.
    for offset in range(_DATA_WORDS):
        builder.poke(_DATA_BASE + offset, rng.randint(-100, 100))

    builder.label("main")
    builder.li(13, trip_count)  # loop counter, untouched by bodies
    builder.label("outer")
    for block in range(n_blocks):
        _emit_random_straightline(builder, rng, rng.randint(2, 8))
        if has_subroutine and rng.random() < 0.6:
            builder.jal("leaf")
        if rng.random() < 0.5:
            # Forward branch over a short alternative body.
            skip = f"skip_{block}"
            builder.blt(rng.choice(_WORK_REGS), rng.choice(_WORK_REGS), skip)
            _emit_random_straightline(builder, rng, rng.randint(1, 5))
            builder.label(skip)
    builder.addi(13, 13, -1)
    builder.bne(13, 0, "outer")
    builder.halt()
    if has_subroutine:
        builder.label("leaf")
        _emit_random_straightline(builder, rng, rng.randint(1, 6))
        builder.jr(31)
    return builder.build()
