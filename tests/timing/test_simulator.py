"""Unit tests for the task-level timing simulator."""

import dataclasses

import pytest

from repro.config import (
    BaselineConfig,
    OOO_BASELINE,
    SEQUENTIAL_BASELINE,
    TimingConfig,
)
from repro.errors import TimingError
from repro.mssp.engine import MsspResult
from repro.mssp.trace import (
    MasterFailureRecord,
    MsspCounters,
    RecoveryRecord,
    TaskAttemptRecord,
)
from repro.timing import (
    baseline_cycles,
    simulate_mssp,
    speedup,
)


def task(tid, n, master, committed=True, **kw):
    return TaskAttemptRecord(
        tid=tid, start_pc=0, end_pc=1, n_instrs=n, master_instrs=master,
        committed=committed, **kw,
    )


def make_result(records, committed_instrs=None, recovery_instrs=0):
    counters = MsspCounters()
    for record in records:
        if isinstance(record, TaskAttemptRecord) and record.committed:
            counters.tasks_committed += 1
            counters.committed_instrs += record.n_instrs
        if isinstance(record, RecoveryRecord):
            counters.recovery_instrs += record.n_instrs
    if committed_instrs is not None:
        counters.committed_instrs = committed_instrs
    from repro.machine.state import ArchState

    return MsspResult(
        final_state=ArchState(), halted=True, records=list(records),
        counters=counters,
    )


#: Zero-latency configuration isolates the instruction-cost arithmetic.
FREE = TimingConfig(
    n_slaves=4, master_cpi=0.5, slave_cpi=1.0, spawn_latency=0.0,
    commit_latency=0.0, squash_penalty=0.0, restart_latency=0.0,
)


class TestSingleTask:
    def test_slave_bound_task(self):
        result = make_result([task(0, n=100, master=10)])
        breakdown = simulate_mssp(result, FREE)
        # master closes at 5, slave runs 100 cycles from 0.
        assert breakdown.total_cycles == pytest.approx(100.0)
        assert breakdown.slave_bound_tasks == 1

    def test_master_bound_task(self):
        result = make_result([task(0, n=10, master=100)])
        breakdown = simulate_mssp(result, FREE)
        assert breakdown.total_cycles == pytest.approx(50.0)
        assert breakdown.master_bound_tasks == 1

    def test_spawn_and_commit_latency_add(self):
        config = dataclasses.replace(FREE, spawn_latency=7.0, commit_latency=3.0)
        result = make_result([task(0, n=10, master=2)])
        breakdown = simulate_mssp(result, config)
        assert breakdown.total_cycles == pytest.approx(7 + 10 + 3)


class TestPipelining:
    def test_slaves_overlap(self):
        """With enough slaves, throughput is master-limited."""
        records = [task(i, n=100, master=100) for i in range(8)]
        breakdown = simulate_mssp(make_result(records), FREE)
        # Master produces a fork every 50 cycles; each slave needs 100.
        # Completion: last close at 400, last slave ends 350+100=450.
        assert breakdown.total_cycles == pytest.approx(450.0)

    def test_single_slave_serializes(self):
        config = dataclasses.replace(FREE, n_slaves=1)
        records = [task(i, n=100, master=10) for i in range(4)]
        breakdown = simulate_mssp(make_result(records), config)
        assert breakdown.total_cycles == pytest.approx(400.0)
        assert breakdown.master_stall_cycles > 0

    def test_more_slaves_never_slower(self):
        records = [task(i, n=60, master=20) for i in range(12)]
        cycles = []
        for n in (1, 2, 4, 8):
            config = dataclasses.replace(FREE, n_slaves=n)
            cycles.append(simulate_mssp(make_result(records), config).total_cycles)
        assert cycles == sorted(cycles, reverse=True)

    def test_commit_serialization_counted(self):
        config = dataclasses.replace(FREE, commit_latency=50.0)
        records = [task(i, n=10, master=1) for i in range(4)]
        breakdown = simulate_mssp(make_result(records), config)
        assert breakdown.commit_bound_tasks >= 1


class TestSquashAndRecovery:
    def test_squash_penalty_applied(self):
        config = dataclasses.replace(FREE, squash_penalty=100.0)
        records = [
            task(0, n=10, master=10, committed=False),
            RecoveryRecord(n_instrs=20, halted=True, resumed_at=None),
        ]
        breakdown = simulate_mssp(make_result(records), config)
        assert breakdown.squash_overhead_cycles == pytest.approx(100.0)
        assert breakdown.recovery_cycles == pytest.approx(20.0)
        assert breakdown.squashed_tasks == 1

    def test_master_failure_costs_cycles(self):
        records = [
            MasterFailureRecord(kind="timeout", master_instrs=200),
            RecoveryRecord(n_instrs=10, halted=True, resumed_at=None),
        ]
        breakdown = simulate_mssp(make_result(records), FREE)
        assert breakdown.total_cycles == pytest.approx(200 * 0.5 + 10)

    def test_recovery_serializes_after_squash(self):
        config = dataclasses.replace(FREE, restart_latency=5.0)
        records = [
            task(0, n=10, master=2, committed=False),
            RecoveryRecord(n_instrs=30, halted=False, resumed_at=1),
            task(1, n=10, master=2),
        ]
        breakdown = simulate_mssp(make_result(records), config)
        # squash at 10, recovery 15..45, next task slave 45..55.
        assert breakdown.total_cycles == pytest.approx(55.0)

    def test_higher_latencies_never_faster(self):
        records = [
            task(0, n=40, master=10),
            task(1, n=40, master=10, committed=False),
            RecoveryRecord(n_instrs=40, halted=False, resumed_at=0),
            task(2, n=40, master=10),
        ]
        base = simulate_mssp(make_result(records), FREE).total_cycles
        for name in ("spawn_latency", "commit_latency", "squash_penalty",
                     "restart_latency"):
            config = dataclasses.replace(FREE, **{name: 25.0})
            assert simulate_mssp(make_result(records), config).total_cycles >= base


class TestSpeedup:
    def test_baseline_cycles(self):
        assert baseline_cycles(1000, SEQUENTIAL_BASELINE) == 1000.0
        assert baseline_cycles(1000, OOO_BASELINE) == pytest.approx(450.0)
        assert baseline_cycles(1000, BaselineConfig(name="x", cpi=2.0)) == 2000.0

    def test_speedup_slave_limited_by_core_count(self):
        """With 4 slaves and tasks as heavy as the baseline's work, the
        speedup ceiling is the slave count."""
        records = [task(i, n=100, master=25) for i in range(40)]
        value = speedup(make_result(records), FREE)
        assert 3.5 < value <= 4.0

    def test_speedup_master_limited_with_many_slaves(self):
        """With slaves to spare, throughput is the master's fork rate:
        baseline_instrs / (master_instrs * master_cpi)."""
        config = dataclasses.replace(FREE, n_slaves=16)
        records = [task(i, n=100, master=25) for i in range(40)]
        value = speedup(make_result(records), config)
        # 4000 instrs vs ~40 * 12.5 = 500 cycles of master work.
        assert value > 6.0

    def test_speedup_of_pure_recovery_is_below_one(self):
        records = [RecoveryRecord(n_instrs=100, halted=True, resumed_at=None)]
        config = dataclasses.replace(FREE, restart_latency=10.0)
        assert speedup(make_result(records), config) < 1.0

    def test_empty_trace_raises(self):
        with pytest.raises(TimingError):
            speedup(make_result([]), FREE)
