"""Tests for schedule capture and timeline rendering."""

import pytest

from repro.config import DistillConfig, TimingConfig
from repro.distill import Distiller
from repro.errors import TimingError
from repro.isa.asm import assemble
from repro.mssp import MsspEngine
from repro.profiling import profile_program
from repro.timing import render_timeline, simulate_mssp, utilization

SOURCE = """
main:   li r1, 120
loop:   addi r1, r1, -1
        add r2, r2, r1
        lw r3, 500(zero)
        add r2, r2, r3
        bne r1, zero, loop
        sw r2, 0x900(zero)
        halt
        .data 500
        .word 3
"""


@pytest.fixture(scope="module")
def run():
    program = assemble(SOURCE)
    profile = profile_program(program)
    distillation = Distiller(DistillConfig(target_task_size=25)).distill(
        program, profile
    )
    return MsspEngine(program, distillation).run()


class TestScheduleCapture:
    def test_disabled_by_default(self, run):
        breakdown = simulate_mssp(run, TimingConfig())
        assert breakdown.schedule == []

    def test_entries_cover_all_records(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        tasks = [e for e in breakdown.schedule if e.kind == "task"]
        assert len(tasks) == len(run.task_records)

    def test_entry_time_ordering(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        for entry in breakdown.schedule:
            assert entry.spawn <= entry.close
            assert entry.spawn <= entry.start <= entry.done <= entry.commit
            assert entry.commit <= breakdown.total_cycles + 1e-9

    def test_commits_in_order(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        commits = [
            e.commit for e in breakdown.schedule if e.kind == "task"
        ]
        assert commits == sorted(commits)

    def test_slave_slots_never_overlap(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        by_slot = {}
        for entry in breakdown.schedule:
            if entry.kind == "task":
                by_slot.setdefault(entry.slot, []).append(entry)
        for entries in by_slot.values():
            entries.sort(key=lambda e: e.start)
            for first, second in zip(entries, entries[1:]):
                assert second.start >= first.done - 1e-9

    def test_schedule_flag_does_not_change_cycles(self, run):
        plain = simulate_mssp(run, TimingConfig())
        with_schedule = simulate_mssp(run, TimingConfig(), schedule=True)
        assert plain.total_cycles == with_schedule.total_cycles


class TestRendering:
    def test_renders_all_lanes(self, run):
        config = TimingConfig(n_slaves=4)
        breakdown = simulate_mssp(run, config, schedule=True)
        text = render_timeline(breakdown, width=60)
        assert "master" in text
        assert "slave 0" in text
        assert "commit" in text
        assert "#" in text and "=" in text and "C" in text

    def test_requires_schedule(self, run):
        breakdown = simulate_mssp(run, TimingConfig())
        with pytest.raises(TimingError):
            render_timeline(breakdown)

    def test_window_validation(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        with pytest.raises(TimingError):
            render_timeline(breakdown, start=100, end=100)

    def test_line_widths_consistent(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        lines = render_timeline(breakdown, width=40).splitlines()[1:]
        assert len({len(line) for line in lines}) == 1

    def test_partial_window(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        full = render_timeline(breakdown, width=50)
        early = render_timeline(
            breakdown, width=50, end=breakdown.total_cycles / 4
        )
        assert full != early


class TestEdgeCases:
    """Hand-built schedules probing the renderer's corners."""

    @staticmethod
    def breakdown(entries, total):
        from repro.timing.simulator import TimingBreakdown

        made = TimingBreakdown(total_cycles=total)
        made.schedule.extend(entries)
        return made

    @staticmethod
    def entry(**overrides):
        from repro.timing.simulator import ScheduleEntry

        fields = dict(
            kind="task", tid=0, slot=0, spawn=0.0, close=10.0,
            start=10.0, done=20.0, commit=25.0, committed=True,
        )
        fields.update(overrides)
        return ScheduleEntry(**fields)

    def test_zero_duration_task_paints_one_cell(self):
        made = self.breakdown(
            [self.entry(start=50.0, done=50.0, commit=50.0)], 100.0
        )
        text = render_timeline(made, width=50)
        slave = next(l for l in text.splitlines() if "slave 0" in l)
        assert slave.count("#") == 1

    def test_all_zero_duration_entries_render(self):
        entries = [
            self.entry(tid=t, spawn=5.0 * t, close=5.0 * t,
                       start=5.0 * t, done=5.0 * t, commit=5.0 * t)
            for t in range(4)
        ]
        text = render_timeline(self.breakdown(entries, 20.0), width=40)
        assert "master" in text and "commit" in text

    def test_recovery_lane_overlapping_squash_window(self):
        entries = [
            self.entry(tid=0, start=10.0, done=30.0, commit=35.0,
                       committed=False),
            self.entry(kind="recovery", tid=-1, spawn=20.0, close=20.0,
                       start=20.0, done=60.0, commit=60.0),
        ]
        text = render_timeline(self.breakdown(entries, 80.0), width=40)
        lines = text.splitlines()
        slave = next(l for l in lines if "slave 0" in l)
        recovery = next(l for l in lines if "recovery" in l)
        assert "x" in slave
        # Overlap: some columns carry both the squashed task and the
        # recovery stretch.
        squash_cols = {i for i, c in enumerate(slave) if c == "x"}
        recovery_cols = {i for i, c in enumerate(recovery) if c == "r"}
        assert squash_cols & recovery_cols

    def test_more_than_sixteen_slave_lanes(self):
        entries = [
            self.entry(tid=t, slot=t, spawn=t, close=t + 1.0,
                       start=t + 1.0, done=t + 2.0, commit=t + 3.0)
            for t in range(20)
        ]
        text = render_timeline(self.breakdown(entries, 30.0), width=40)
        lines = text.splitlines()
        assert sum(1 for l in lines if "slave" in l) == 20
        assert "slave 19" in text
        # The label gutter stays aligned even for two-digit lanes.
        assert len({len(l) for l in lines[1:]}) == 1

    def test_width_narrower_than_label_gutter(self):
        made = self.breakdown([self.entry()], 30.0)
        text = render_timeline(made, width=4)
        lines = text.splitlines()[1:]
        assert len({len(l) for l in lines}) == 1
        assert all("|" in l for l in lines)

    def test_nonpositive_width_rejected(self):
        made = self.breakdown([self.entry()], 30.0)
        with pytest.raises(TimingError):
            render_timeline(made, width=0)
        with pytest.raises(TimingError):
            render_timeline(made, width=-5)


class TestUtilization:
    def test_in_unit_interval(self, run):
        config = TimingConfig(n_slaves=4)
        breakdown = simulate_mssp(run, config, schedule=True)
        value = utilization(breakdown, 4)
        assert 0.0 < value <= 1.0

    def test_fewer_slaves_busier(self, run):
        low = simulate_mssp(run, TimingConfig(n_slaves=2), schedule=True)
        high = simulate_mssp(run, TimingConfig(n_slaves=8), schedule=True)
        assert utilization(low, 2) > utilization(high, 8)

    def test_requires_schedule(self, run):
        breakdown = simulate_mssp(run, TimingConfig())
        with pytest.raises(TimingError):
            utilization(breakdown, 8)
