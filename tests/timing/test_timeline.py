"""Tests for schedule capture and timeline rendering."""

import pytest

from repro.config import DistillConfig, TimingConfig
from repro.distill import Distiller
from repro.errors import TimingError
from repro.isa.asm import assemble
from repro.mssp import MsspEngine
from repro.profiling import profile_program
from repro.timing import render_timeline, simulate_mssp, utilization

SOURCE = """
main:   li r1, 120
loop:   addi r1, r1, -1
        add r2, r2, r1
        lw r3, 500(zero)
        add r2, r2, r3
        bne r1, zero, loop
        sw r2, 0x900(zero)
        halt
        .data 500
        .word 3
"""


@pytest.fixture(scope="module")
def run():
    program = assemble(SOURCE)
    profile = profile_program(program)
    distillation = Distiller(DistillConfig(target_task_size=25)).distill(
        program, profile
    )
    return MsspEngine(program, distillation).run()


class TestScheduleCapture:
    def test_disabled_by_default(self, run):
        breakdown = simulate_mssp(run, TimingConfig())
        assert breakdown.schedule == []

    def test_entries_cover_all_records(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        tasks = [e for e in breakdown.schedule if e.kind == "task"]
        assert len(tasks) == len(run.task_records)

    def test_entry_time_ordering(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        for entry in breakdown.schedule:
            assert entry.spawn <= entry.close
            assert entry.spawn <= entry.start <= entry.done <= entry.commit
            assert entry.commit <= breakdown.total_cycles + 1e-9

    def test_commits_in_order(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        commits = [
            e.commit for e in breakdown.schedule if e.kind == "task"
        ]
        assert commits == sorted(commits)

    def test_slave_slots_never_overlap(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        by_slot = {}
        for entry in breakdown.schedule:
            if entry.kind == "task":
                by_slot.setdefault(entry.slot, []).append(entry)
        for entries in by_slot.values():
            entries.sort(key=lambda e: e.start)
            for first, second in zip(entries, entries[1:]):
                assert second.start >= first.done - 1e-9

    def test_schedule_flag_does_not_change_cycles(self, run):
        plain = simulate_mssp(run, TimingConfig())
        with_schedule = simulate_mssp(run, TimingConfig(), schedule=True)
        assert plain.total_cycles == with_schedule.total_cycles


class TestRendering:
    def test_renders_all_lanes(self, run):
        config = TimingConfig(n_slaves=4)
        breakdown = simulate_mssp(run, config, schedule=True)
        text = render_timeline(breakdown, width=60)
        assert "master" in text
        assert "slave 0" in text
        assert "commit" in text
        assert "#" in text and "=" in text and "C" in text

    def test_requires_schedule(self, run):
        breakdown = simulate_mssp(run, TimingConfig())
        with pytest.raises(TimingError):
            render_timeline(breakdown)

    def test_window_validation(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        with pytest.raises(TimingError):
            render_timeline(breakdown, start=100, end=100)

    def test_line_widths_consistent(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        lines = render_timeline(breakdown, width=40).splitlines()[1:]
        assert len({len(line) for line in lines}) == 1

    def test_partial_window(self, run):
        breakdown = simulate_mssp(run, TimingConfig(), schedule=True)
        full = render_timeline(breakdown, width=50)
        early = render_timeline(
            breakdown, width=50, end=breakdown.total_cycles / 4
        )
        assert full != early


class TestUtilization:
    def test_in_unit_interval(self, run):
        config = TimingConfig(n_slaves=4)
        breakdown = simulate_mssp(run, config, schedule=True)
        value = utilization(breakdown, 4)
        assert 0.0 < value <= 1.0

    def test_fewer_slaves_busier(self, run):
        low = simulate_mssp(run, TimingConfig(n_slaves=2), schedule=True)
        high = simulate_mssp(run, TimingConfig(n_slaves=8), schedule=True)
        assert utilization(low, 2) > utilization(high, 8)

    def test_requires_schedule(self, run):
        breakdown = simulate_mssp(run, TimingConfig())
        with pytest.raises(TimingError):
            utilization(breakdown, 8)
