"""Timing-model invariants checked on *real* workload traces.

The unit tests in test_simulator.py use synthetic traces; these use the
actual functional engine's output, so the invariants cover the record
shapes the engine really emits (strided tasks, exact restarts, recovery
episodes, master failures).
"""

import dataclasses

import pytest

from repro.config import TimingConfig
from repro.experiments import evaluate, prepare
from repro.timing import simulate_mssp
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def runs():
    results = {}
    for name in ("compress", "hashlookup"):
        prepared = prepare(get_workload(name), size=600)
        results[name] = evaluate(prepared).mssp
    return results


def cycles(result, **overrides):
    config = dataclasses.replace(TimingConfig(), **overrides)
    return simulate_mssp(result, config).total_cycles


class TestMonotonicity:
    @pytest.mark.parametrize("name", ["compress", "hashlookup"])
    def test_more_slaves_never_slower(self, runs, name):
        result = runs[name]
        series = [cycles(result, n_slaves=n) for n in (1, 2, 4, 8, 16)]
        assert series == sorted(series, reverse=True)

    @pytest.mark.parametrize("name", ["compress", "hashlookup"])
    def test_faster_master_never_slower(self, runs, name):
        result = runs[name]
        fast = cycles(result, master_cpi=0.25)
        slow = cycles(result, master_cpi=1.0)
        assert fast <= slow

    @pytest.mark.parametrize("name", ["compress", "hashlookup"])
    def test_latency_scaling_monotone(self, runs, name):
        result = runs[name]
        base = TimingConfig()
        series = [
            simulate_mssp(result, base.scaled_latencies(s)).total_cycles
            for s in (0.0, 1.0, 2.0, 4.0)
        ]
        assert series == sorted(series)

    @pytest.mark.parametrize("name", ["compress", "hashlookup"])
    def test_load_penalty_monotone(self, runs, name):
        result = runs[name]
        series = [
            cycles(result, load_penalty=p) for p in (0.0, 0.5, 1.0, 2.0)
        ]
        assert series == sorted(series)

    @pytest.mark.parametrize("name", ["compress", "hashlookup"])
    def test_checkpoint_cost_monotone(self, runs, name):
        result = runs[name]
        series = [
            cycles(result, checkpoint_word_latency=c)
            for c in (0.0, 0.1, 0.5)
        ]
        assert series == sorted(series)


class TestAccounting:
    @pytest.mark.parametrize("name", ["compress", "hashlookup"])
    def test_classification_covers_all_tasks(self, runs, name):
        result = runs[name]
        breakdown = simulate_mssp(result, TimingConfig())
        classified = (
            breakdown.master_bound_tasks
            + breakdown.slave_bound_tasks
            + breakdown.commit_bound_tasks
        )
        assert classified == (
            breakdown.committed_tasks + breakdown.squashed_tasks
        )
        assert breakdown.committed_tasks == result.counters.tasks_committed

    @pytest.mark.parametrize("name", ["compress", "hashlookup"])
    def test_total_cycles_bound_below_by_serial_master(self, runs, name):
        """The machine can never finish before the master's own work."""
        result = runs[name]
        breakdown = simulate_mssp(result, TimingConfig())
        master_work = result.counters.master_instrs * TimingConfig().master_cpi
        assert breakdown.total_cycles >= master_work

    @pytest.mark.parametrize("name", ["compress", "hashlookup"])
    def test_deterministic_replay(self, runs, name):
        result = runs[name]
        first = simulate_mssp(result, TimingConfig())
        second = simulate_mssp(result, TimingConfig())
        assert first.total_cycles == second.total_cycles
        assert first.summary() == second.summary()
