"""Tests for the clock seam: Clock protocol, VirtualClock, CostModel."""

import time

import pytest

from repro.config import TimingConfig
from repro.mssp.runtime.events import (
    EventBus,
    ResultAdopted,
    TaskExecuted,
    TaskForked,
)
from repro.timing.clock import Clock, CostModel, VirtualClock, WallClock


class TestClocks:
    def test_wall_clock_advances(self):
        clock = WallClock()
        first = clock.now()
        time.sleep(0.001)
        assert clock.now() > first

    def test_virtual_clock_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_virtual_clock_advance(self):
        clock = VirtualClock()
        clock.advance(2.5)
        clock.advance(0.5)
        assert clock.now() == 3.0

    def test_virtual_clock_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_virtual_clock_advance_to_never_rewinds(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        clock.advance_to(4.0)
        assert clock.now() == 10.0

    def test_both_satisfy_protocol(self):
        assert isinstance(WallClock(), Clock)
        assert isinstance(VirtualClock(), Clock)


class TestCostModel:
    def test_master_cheaper_than_slave(self):
        cost = CostModel()
        assert cost.master_time(100) < cost.slave_time(100)

    def test_transfer_scales_with_checkpoint(self):
        cost = CostModel(checkpoint_word=2.0, dispatch=10.0)
        assert cost.transfer_time(0) == 10.0
        assert cost.transfer_time(5) == 20.0

    def test_scaled_multiplies_every_rate(self):
        cost = CostModel().scaled(2.0)
        base = CostModel()
        assert cost.slave_instr == 2 * base.slave_instr
        assert cost.verify == 2 * base.verify
        assert cost.squash == 2 * base.squash

    def test_from_timing_matches_config(self):
        timing = TimingConfig()
        cost = CostModel.from_timing(timing)
        assert cost.master_instr == timing.master_cpi
        assert cost.slave_instr == timing.slave_cpi
        assert cost.verify == timing.commit_latency
        assert cost.squash == timing.squash_penalty

    def test_calibrate_fits_measured_rate(self):
        events = [
            TaskExecuted(task=_FakeTask(1000), cost=2e-3),
            TaskExecuted(task=_FakeTask(1000), cost=2e-3),
        ]
        cost = CostModel.calibrate(events)
        assert cost.slave_instr == pytest.approx(2e-6)
        # The whole model scales together: ratios are preserved.
        base = CostModel()
        assert cost.verify / cost.slave_instr == pytest.approx(
            base.verify / base.slave_instr
        )

    def test_calibrate_ignores_other_kinds(self):
        events = [
            TaskForked(tid=0, start_pc=0, end_pc=None),
            ResultAdopted(tid=0, cost=5e-3),
            TaskExecuted(task=_FakeTask(500), cost=1e-3),
        ]
        cost = CostModel.calibrate(events)
        assert cost.slave_instr == pytest.approx(2e-6)

    def test_calibrate_rejects_unmeasured_trace(self):
        with pytest.raises(ValueError):
            CostModel.calibrate([TaskForked(tid=0, start_pc=0, end_pc=None)])


class _FakeTask:
    def __init__(self, n_instrs):
        self.n_instrs = n_instrs
        self.n_loads = 0


class TestEventStamping:
    def test_emit_stamps_time_and_actor(self):
        bus = EventBus(clock=VirtualClock(), actor="test-actor")
        bus.clock.advance(7.0)
        seen = []
        bus.subscribe(seen.append)
        bus.emit(TaskForked(tid=0, start_pc=0, end_pc=None))
        assert seen[0].at == 7.0
        assert seen[0].actor == "test-actor"

    def test_emit_preserves_producer_actor(self):
        bus = EventBus(actor="bus")
        event = TaskForked(tid=0, start_pc=0, end_pc=None)
        object.__setattr__(event, "actor", "producer")
        bus.emit(event)
        assert event.actor == "producer"

    def test_unemitted_events_read_time_zero(self):
        event = TaskForked(tid=0, start_pc=0, end_pc=None)
        assert event.at == 0.0
        assert event.actor == ""

    def test_stamps_do_not_affect_equality(self):
        a = TaskForked(tid=1, start_pc=2, end_pc=3)
        b = TaskForked(tid=1, start_pc=2, end_pc=3)
        EventBus(clock=VirtualClock()).emit(a)
        assert a == b

    def test_wall_stamps_monotone(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        for tid in range(50):
            bus.emit(TaskForked(tid=tid, start_pc=0, end_pc=None))
        stamps = [event.at for event in seen]
        assert stamps == sorted(stamps)
