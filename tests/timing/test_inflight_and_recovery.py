"""Tests for checkpoint-buffer backpressure and recovery chunking."""

import dataclasses

import pytest

from repro.config import DistillConfig, MsspConfig, TimingConfig
from repro.distill import Distiller
from repro.distill.pc_map import PcMap
from repro.errors import TimingError
from repro.isa.asm import assemble
from repro.machine import run_to_halt
from repro.machine.state import ArchState
from repro.mssp import MsspEngine
from repro.mssp.engine import MsspResult
from repro.mssp.trace import MsspCounters, TaskAttemptRecord
from repro.profiling import profile_program
from repro.timing import simulate_mssp


def synthetic(records):
    return MsspResult(
        final_state=ArchState(), halted=True, records=records,
        counters=MsspCounters(),
    )


def task(tid, n=10, master=1):
    return TaskAttemptRecord(
        tid=tid, start_pc=0, end_pc=1, n_instrs=n, master_instrs=master,
        committed=True,
    )


FREE = TimingConfig(
    n_slaves=16, master_cpi=0.1, slave_cpi=1.0, spawn_latency=0.0,
    commit_latency=0.0, squash_penalty=0.0, restart_latency=0.0,
)


class TestMaxInflight:
    def test_validation(self):
        with pytest.raises(TimingError):
            TimingConfig(max_inflight=0)
        TimingConfig(max_inflight=4)
        TimingConfig(max_inflight=None)

    def test_depth_one_serializes(self):
        """With a single checkpoint buffer the machine is fully serial."""
        records = [task(i, n=100) for i in range(5)]
        config = dataclasses.replace(FREE, max_inflight=1)
        cycles = simulate_mssp(synthetic(records), config).total_cycles
        # Task i+1 cannot spawn before task i commits.
        assert cycles == pytest.approx(5 * 100, rel=0.02)

    def test_unbounded_pipelines(self):
        records = [task(i, n=100) for i in range(5)]
        cycles = simulate_mssp(synthetic(records), FREE).total_cycles
        assert cycles < 5 * 100 * 0.5  # heavy overlap

    def test_deeper_buffer_never_slower(self):
        records = [task(i, n=40) for i in range(20)]
        series = []
        for depth in (1, 2, 4, 8, None):
            config = dataclasses.replace(FREE, max_inflight=depth)
            series.append(
                simulate_mssp(synthetic(records), config).total_cycles
            )
        assert series == sorted(series, reverse=True)


class TestRecoveryChunking:
    def test_long_anchorless_stretch_is_chunked(self):
        """A program whose anchors are unreachable late in the run makes
        recovery run to halt; a small recovery_max_instrs splits that
        into multiple episodes without changing the result."""
        program = assemble(
            """
            main:   li r1, 40
            loop:   addi r1, r1, -1
                    add r2, r2, r1
                    bne r1, zero, loop
            tail:   li r3, 400
            t2:     addi r3, r3, -1
                    add r2, r2, r3
                    bne r3, zero, t2
                    sw r2, 0x900(zero)
                    halt
            """
        )
        # Anchor only at the first loop: the tail loop (the bulk of the
        # run) is covered by recovery.
        distilled = assemble("fork 1\nj 0\nhalt")
        pc_map = PcMap(resume={0: 0, 1: 1}, entry_orig=0)
        config = MsspConfig(
            recovery_max_instrs=100,
            max_master_instrs_per_task=50,
        )
        result = MsspEngine(program, (distilled, pc_map), config).run()
        reference = run_to_halt(program)
        assert result.final_state.diff(reference.state) == []
        # The ~1200-instruction tail was split into >= 2 episodes.
        assert result.counters.recovery_episodes >= 2
        for record in result.recovery_records:
            assert record.n_instrs <= 100 + 1

    def test_default_cap_invisible_on_workloads(self):
        program = assemble(
            """
            main:   li r1, 50
            loop:   addi r1, r1, -1
                    add r2, r2, r1
                    bne r1, zero, loop
                    halt
            """
        )
        profile = profile_program(program)
        distillation = Distiller(DistillConfig(target_task_size=12)).distill(
            program, profile
        )
        result = MsspEngine(program, distillation).run()
        reference = run_to_halt(program)
        assert result.final_state.diff(reference.state) == []
