"""Tests for the discrete-event cluster replay (agreement + scenarios)."""

import pytest

from repro.config import DistillConfig, TimingConfig
from repro.distill import Distiller
from repro.isa.asm import assemble
from repro.mssp import MsspEngine
from repro.mssp.trace import RecoveryRecord, TaskAttemptRecord
from repro.profiling import profile_program
from repro.sim.cluster import ClusterConfig, ClusterSim, SlaveFailure
from repro.timing.clock import CostModel
from repro.timing.simulator import MsspTimingSimulator

SOURCE = """
main:   li r1, 120
loop:   addi r1, r1, -1
        add r2, r2, r1
        lw r3, 500(zero)
        add r2, r2, r3
        bne r1, zero, loop
        sw r2, 0x900(zero)
        halt
        .data 500
        .word 3
"""


@pytest.fixture(scope="module")
def records():
    program = assemble(SOURCE)
    profile = profile_program(program)
    distillation = Distiller(DistillConfig(target_task_size=25)).distill(
        program, profile
    )
    return MsspEngine(program, distillation).run().records


def synthetic_records(n_tasks=12, n_instrs=100, checkpoint_words=4):
    return [
        TaskAttemptRecord(
            tid=tid, start_pc=0, end_pc=10, n_instrs=n_instrs,
            master_instrs=20, committed=True,
            checkpoint_words=checkpoint_words,
        )
        for tid in range(n_tasks)
    ]


class TestAnalyticAgreement:
    @pytest.mark.parametrize("n_slaves", [1, 2, 4, 8])
    def test_matches_analytic_recurrence(self, records, n_slaves):
        timing = TimingConfig(n_slaves=n_slaves)
        analytic = MsspTimingSimulator(timing).simulate_records(records)
        replayed = ClusterSim(ClusterConfig.from_timing(timing)).replay(
            records
        )
        assert replayed.total_cycles == pytest.approx(
            analytic.total_cycles, rel=1e-9
        )
        assert replayed.committed_tasks == analytic.committed_tasks
        assert replayed.squashed_tasks == analytic.squashed_tasks
        assert replayed.master_stall_cycles == pytest.approx(
            analytic.master_stall_cycles, rel=1e-9, abs=1e-9
        )

    def test_matches_analytic_with_inflight_bound(self, records):
        timing = TimingConfig(n_slaves=4, max_inflight=2)
        analytic = MsspTimingSimulator(timing).simulate_records(records)
        replayed = ClusterSim(ClusterConfig.from_timing(timing)).replay(
            records
        )
        assert replayed.total_cycles == pytest.approx(
            analytic.total_cycles, rel=1e-9
        )

    def test_schedule_matches_analytic(self, records):
        timing = TimingConfig(n_slaves=4)
        analytic = MsspTimingSimulator(timing).simulate_records(
            records, schedule=True
        )
        replayed = ClusterSim(ClusterConfig.from_timing(timing)).replay(
            records, schedule=True
        )
        assert len(replayed.schedule) == len(analytic.schedule)
        for ours, theirs in zip(replayed.schedule, analytic.schedule):
            assert ours.kind == theirs.kind
            assert ours.slot == theirs.slot
            assert ours.start == pytest.approx(theirs.start, rel=1e-9)
            assert ours.done == pytest.approx(theirs.done, rel=1e-9)
            assert ours.commit == pytest.approx(theirs.commit, rel=1e-9)

    def test_recovery_records_accounted(self):
        records = synthetic_records(4) + [
            RecoveryRecord(n_instrs=50, halted=False, resumed_at=10)
        ]
        timing = TimingConfig(n_slaves=2)
        analytic = MsspTimingSimulator(timing).simulate_records(records)
        replayed = ClusterSim(ClusterConfig.from_timing(timing)).replay(
            records
        )
        assert replayed.recovery_cycles > 0
        assert replayed.total_cycles == pytest.approx(
            analytic.total_cycles, rel=1e-9
        )


class TestScenarios:
    def test_contended_link_slows_the_run(self):
        records = synthetic_records(16, checkpoint_words=8)
        cost = CostModel(checkpoint_word=5.0)
        ideal = ClusterSim(
            ClusterConfig(n_slaves=8, cost=cost)
        ).replay(records)
        contended = ClusterSim(
            ClusterConfig(n_slaves=8, cost=cost, link_channels=1,
                          interconnect_latency=50.0)
        ).replay(records)
        assert contended.total_cycles > ideal.total_cycles

    def test_heterogeneous_slaves_slow_the_run(self):
        records = synthetic_records(16)
        even = ClusterSim(ClusterConfig(n_slaves=4)).replay(records)
        uneven = ClusterSim(
            ClusterConfig(n_slaves=4, slave_speeds=(0.25, 0.25, 0.25, 0.25))
        ).replay(records)
        assert uneven.total_cycles > even.total_cycles

    def test_slave_failure_delays_completion(self):
        records = synthetic_records(8)
        plain = ClusterSim(ClusterConfig(n_slaves=1)).replay(records)
        failed = ClusterSim(ClusterConfig(
            n_slaves=1,
            failures=(SlaveFailure(slot=0, at=plain.total_cycles / 4,
                                   downtime=plain.total_cycles),),
        )).replay(records)
        assert failed.total_cycles >= (
            plain.total_cycles + plain.total_cycles / 2
        )

    def test_failure_after_the_run_is_free(self):
        records = synthetic_records(8)
        plain = ClusterSim(ClusterConfig(n_slaves=2)).replay(records)
        late = ClusterSim(ClusterConfig(
            n_slaves=2,
            failures=(SlaveFailure(slot=0, at=plain.total_cycles + 1.0,
                                   downtime=1000.0),),
        )).replay(records)
        assert late.total_cycles == pytest.approx(plain.total_cycles)

    def test_outage_pauses_and_resumes_work(self):
        sim = ClusterSim(ClusterConfig(
            n_slaves=1,
            failures=(SlaveFailure(slot=0, at=10.0, downtime=5.0),),
        ))
        # Work started before the outage pauses across it.
        assert sim._outage_done(0, 8.0, 4.0) == 8.0 + 4.0 + 5.0
        # Work landing in the outage waits for the restart.
        assert sim._outage_done(0, 12.0, 4.0) == 15.0 + 4.0
        # Work on an unaffected slot is untouched.
        assert sim._outage_done(1, 8.0, 4.0) == 12.0


class TestConfigValidation:
    def test_rejects_nonpositive_slaves(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_slaves=0)

    def test_rejects_negative_link_channels(self):
        with pytest.raises(ValueError):
            ClusterConfig(link_channels=-1)

    def test_rejects_nonpositive_speeds(self):
        with pytest.raises(ValueError):
            ClusterConfig(slave_speeds=(1.0, 0.0))

    def test_rejects_failure_outside_cluster(self):
        with pytest.raises(ValueError):
            ClusterConfig(
                n_slaves=2,
                failures=(SlaveFailure(slot=5, at=0.0, downtime=1.0),),
            )

    def test_from_timing_matches_cost_model(self):
        timing = TimingConfig(n_slaves=3)
        cluster = ClusterConfig.from_timing(timing)
        assert cluster.n_slaves == 3
        assert cluster.cost == CostModel.from_timing(timing)
        assert cluster.max_inflight == timing.max_inflight
