"""Tests for the minimal process-style discrete-event engine."""

import pytest

from repro.sim.core import (
    Acquire,
    Hold,
    Resource,
    SimEvent,
    Simulator,
    Wait,
)


class TestRequests:
    def test_negative_hold_rejected(self):
        with pytest.raises(ValueError):
            Hold(-1.0)

    def test_unknown_yield_rejected(self):
        sim = Simulator()

        def actor():
            yield "not-a-request"

        sim.process(actor())
        with pytest.raises(TypeError):
            sim.run()


class TestSimEvent:
    def test_fire_delivers_value_to_waiter(self):
        sim = Simulator()
        event = SimEvent()
        got = []

        def waiter():
            got.append((yield Wait(event)))

        def firer():
            yield Hold(5.0)
            event.fire("payload")

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert got == ["payload"]
        assert sim.now == 5.0

    def test_wait_on_fired_event_does_not_advance_time(self):
        sim = Simulator()
        event = SimEvent()
        event.fire(42)
        got = []

        def actor():
            yield Hold(3.0)
            got.append((yield Wait(event)))
            got.append(sim.now)

        sim.process(actor())
        sim.run()
        assert got == [42, 3.0]

    def test_double_fire_rejected(self):
        event = SimEvent()
        event.fire()
        with pytest.raises(RuntimeError):
            event.fire()


class TestResource:
    def test_fifo_granting(self):
        sim = Simulator()
        resource = Resource(1)
        order = []

        def actor(name, hold):
            yield Acquire(resource)
            yield Hold(hold)
            order.append((name, sim.now))
            resource.release()

        sim.process(actor("first", 4.0))
        sim.process(actor("second", 1.0))
        sim.process(actor("third", 1.0))
        sim.run()
        # One unit: actors serialize in request order, not hold length.
        assert order == [("first", 4.0), ("second", 5.0), ("third", 6.0)]

    def test_capacity_allows_parallelism(self):
        sim = Simulator()
        resource = Resource(2)
        done = []

        def actor(name):
            yield Acquire(resource)
            yield Hold(2.0)
            done.append((name, sim.now))
            resource.release()

        for name in ("a", "b", "c"):
            sim.process(actor(name))
        sim.run()
        assert done == [("a", 2.0), ("b", 2.0), ("c", 4.0)]

    def test_release_without_acquire_rejected(self):
        with pytest.raises(RuntimeError):
            Resource(1).release()

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Resource(0)


class TestSimulator:
    def test_deterministic_tie_break(self):
        # Two actors scheduled at the same instant run in spawn order,
        # every time.
        def trace_once():
            sim = Simulator()
            order = []

            def actor(name):
                yield Hold(1.0)
                order.append(name)

            for name in ("x", "y", "z"):
                sim.process(actor(name))
            sim.run()
            return order

        assert trace_once() == trace_once() == ["x", "y", "z"]

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []

        def actor():
            yield Hold(10.0)
            fired.append(sim.now)

        sim.process(actor())
        assert sim.run(until=5.0) == 5.0
        assert fired == []
        assert sim.run() == 10.0
        assert fired == [10.0]

    def test_finished_event_carries_return_value(self):
        sim = Simulator()

        def actor():
            yield Hold(1.0)
            return "done"

        proc = sim.process(actor())
        sim.run()
        assert proc.finished.fired
        assert proc.finished.value == "done"

    def test_schedule_into_past_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-0.5, lambda: None)
