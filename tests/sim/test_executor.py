"""Tests for the ``sim`` runtime backend: bit-identity on a virtual clock."""

import pytest

from repro.config import DistillConfig, MsspConfig
from repro.distill import Distiller
from repro.isa.asm import assemble
from repro.mssp.engine import create_engine
from repro.mssp.runtime.events import EventLog
from repro.profiling import profile_program
from repro.timing.clock import VirtualClock, WallClock

SOURCE = """
main:   li r1, 150
loop:   addi r1, r1, -1
        add r2, r2, r1
        lw r3, 500(zero)
        add r2, r2, r3
        bne r1, zero, loop
        sw r2, 0x900(zero)
        halt
        .data 500
        .word 3
"""


@pytest.fixture(scope="module")
def prepared():
    program = assemble(SOURCE)
    profile = profile_program(program)
    distillation = Distiller(DistillConfig(target_task_size=25)).distill(
        program, profile
    )
    return program, distillation


def run(prepared, runtime, log=None):
    program, distillation = prepared
    with create_engine(
        program, distillation, MsspConfig(runtime=runtime)
    ) as engine:
        if log is not None:
            engine.events.subscribe(log)
        return engine.run(), engine


class TestBitIdentity:
    def test_sim_matches_eager(self, prepared):
        eager, _ = run(prepared, "eager")
        sim, _ = run(prepared, "sim")
        assert sim.counters == eager.counters
        assert sim.halted == eager.halted
        assert sim.records == eager.records
        assert sim.final_state.pc == eager.final_state.pc
        assert sim.final_state.diff(eager.final_state) == []

    def test_sim_matches_thread(self, prepared):
        thread, _ = run(prepared, "thread")
        sim, _ = run(prepared, "sim")
        assert sim.counters == thread.counters
        assert sim.final_state.diff(thread.final_state) == []


class TestVirtualTime:
    def test_sim_engine_gets_a_virtual_clock(self, prepared):
        _, engine = run(prepared, "sim")
        assert isinstance(engine.clock, VirtualClock)

    def test_eager_engine_gets_a_wall_clock(self, prepared):
        _, engine = run(prepared, "eager")
        assert isinstance(engine.clock, WallClock)

    def test_virtual_clock_advances_over_the_run(self, prepared):
        _, engine = run(prepared, "sim")
        assert engine.clock.now() > 0.0

    def test_events_stamped_with_virtual_time(self, prepared):
        log = EventLog()
        _, engine = run(prepared, "sim", log)
        stamps = [event.at for event in log.events]
        assert stamps, "sim run emitted no events"
        assert stamps == sorted(stamps)
        assert stamps[-1] <= engine.clock.now()
        # Virtual stamps are simulated cycles-in-seconds, far from the
        # wall clock's perf_counter epoch.
        assert all(at < 1e6 for at in stamps)

    def test_priced_exec_seconds_on_records(self, prepared):
        log = EventLog()
        run(prepared, "sim", log)
        costs = [
            event.cost for event in log.events
            if event.kind == "task_executed"
        ]
        assert costs and all(cost > 0.0 for cost in costs)
