"""Tests for JSONL trace export/import round-tripping."""

import io
import json

import pytest

from repro.config import DistillConfig, MsspConfig
from repro.distill import Distiller
from repro.isa.asm import assemble
from repro.mssp.engine import create_engine
from repro.mssp.runtime.events import EventLog
from repro.mssp.trace import TaskAttemptRecord
from repro.profiling import profile_program
from repro.sim.tracefile import (
    TaskSketch,
    event_from_dict,
    event_to_dict,
    export_events,
    import_events,
)
from repro.timing.clock import CostModel
from repro.timing.simulator import records_from_events

SOURCE = """
main:   li r1, 90
loop:   addi r1, r1, -1
        add r2, r2, r1
        bne r1, zero, loop
        sw r2, 0x900(zero)
        halt
"""


@pytest.fixture(scope="module")
def captured():
    program = assemble(SOURCE)
    profile = profile_program(program)
    distillation = Distiller(DistillConfig(target_task_size=20)).distill(
        program, profile
    )
    log = EventLog()
    with create_engine(
        program, distillation, MsspConfig(runtime="thread", num_slaves=2)
    ) as engine:
        engine.events.subscribe(log)
        engine.run()
    return log.events


class TestRoundTrip:
    def test_kinds_and_stamps_survive(self, captured):
        buffer = io.StringIO()
        count = export_events(captured, buffer)
        assert count == len(captured)
        buffer.seek(0)
        rebuilt = import_events(buffer)
        assert [e.kind for e in rebuilt] == [e.kind for e in captured]
        assert [e.at for e in rebuilt] == [e.at for e in captured]
        assert [e.actor for e in rebuilt] == [e.actor for e in captured]

    def test_trace_records_rebuild_exactly(self, captured):
        buffer = io.StringIO()
        export_events(captured, buffer)
        buffer.seek(0)
        rebuilt = import_events(buffer)
        assert records_from_events(rebuilt) == records_from_events(captured)

    def test_file_path_round_trip(self, captured, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        count = export_events(captured, path)
        rebuilt = import_events(path)
        assert len(rebuilt) == count

    def test_imported_trace_calibrates(self, captured):
        buffer = io.StringIO()
        export_events(captured, buffer)
        buffer.seek(0)
        rebuilt = import_events(buffer)
        cost = CostModel.calibrate(rebuilt)
        assert cost.slave_instr > 0.0

    def test_tasks_export_as_sketches(self, captured):
        buffer = io.StringIO()
        export_events(captured, buffer)
        buffer.seek(0)
        rebuilt = import_events(buffer)
        executed = [e for e in rebuilt if e.kind == "task_executed"]
        assert executed
        assert all(isinstance(e.task, TaskSketch) for e in executed)
        assert all(e.task.n_instrs > 0 for e in executed)


class TestEventCodec:
    def test_record_payload_round_trips(self):
        from repro.mssp.runtime.events import TaskCommitted

        record = TaskAttemptRecord(
            tid=3, start_pc=0, end_pc=8, n_instrs=40, master_instrs=10,
            committed=True, checkpoint_words=5,
        )
        event = TaskCommitted(tid=3, record=record)
        rebuilt = event_from_dict(event_to_dict(event))
        assert rebuilt.record == record

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            event_from_dict({"kind": "wormhole", "at": 0.0, "actor": ""})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fields"):
            event_from_dict({
                "kind": "task_forked", "at": 0.0, "actor": "",
                "tid": 1, "start_pc": 0, "end_pc": None, "wormhole": 9,
            })

    def test_bad_json_reports_line_number(self):
        source = io.StringIO('{"kind": "task_forked", "tid": 0, '
                             '"start_pc": 0, "end_pc": null}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            import_events(source)

    def test_blank_lines_skipped(self, captured):
        buffer = io.StringIO()
        export_events(captured[:3], buffer)
        text = "\n" + buffer.getvalue().replace("\n", "\n\n")
        assert len(import_events(io.StringIO(text))) == 3

    def test_export_is_plain_jsonl(self, captured):
        buffer = io.StringIO()
        export_events(captured[:5], buffer)
        for line in buffer.getvalue().splitlines():
            assert isinstance(json.loads(line), dict)
