"""Round-trip tests for profile serialization."""

import json

from hypothesis import given, settings

from repro.isa.asm import assemble
from repro.profiling import Profile, profile_program

from tests.strategies import terminating_programs

SOURCE = """
main:   li r1, 50
loop:   addi r1, r1, -1
        lw r2, 500(zero)
        add r3, r3, r2
        sw r3, 600(zero)
        andi r4, r1, 7
        bne r4, zero, skip
        addi r5, r5, 1
skip:   bne r1, zero, loop
        halt
        .data 500
        .word 9
"""


def profiles_equal(a: Profile, b: Profile) -> bool:
    return a.to_dict() == b.to_dict()


class TestRoundTrip:
    def test_dict_roundtrip(self):
        profile = profile_program(assemble(SOURCE))
        again = Profile.from_dict(profile.to_dict())
        assert profiles_equal(profile, again)

    def test_json_roundtrip(self):
        profile = profile_program(assemble(SOURCE))
        text = json.dumps(profile.to_dict())
        again = Profile.from_dict(json.loads(text))
        assert profiles_equal(profile, again)

    def test_queries_survive_roundtrip(self):
        program = assemble(SOURCE)
        profile = profile_program(program)
        again = Profile.from_dict(json.loads(json.dumps(profile.to_dict())))
        for pc in range(len(program.code)):
            assert profile.exec_count(pc) == again.exec_count(pc)
            assert profile.stable_load_value(pc) == again.stable_load_value(pc)
            assert profile.dead_store_addresses(pc) == (
                again.dead_store_addresses(pc)
            )
        for pc, branch in profile.branches.items():
            assert again.branches[pc].bias == branch.bias

    def test_distillation_identical_from_restored_profile(self):
        from repro.config import DistillConfig
        from repro.distill import Distiller

        program = assemble(SOURCE)
        profile = profile_program(program)
        restored = Profile.from_dict(profile.to_dict())
        config = DistillConfig(target_task_size=12, min_branch_count=4)
        original = Distiller(config).distill(program, profile)
        rebuilt = Distiller(config).distill(program, restored)
        assert original.distilled.code == rebuilt.distilled.code
        assert dict(original.pc_map.resume) == dict(rebuilt.pc_map.resume)

    @given(terminating_programs())
    @settings(max_examples=15, deadline=None)
    def test_random_program_roundtrip(self, program):
        profile = profile_program(program, max_steps=2_000_000)
        again = Profile.from_dict(json.loads(json.dumps(profile.to_dict())))
        assert profiles_equal(profile, again)

    def test_merge_after_roundtrip(self):
        program = assemble(SOURCE)
        first = profile_program(program)
        second = Profile.from_dict(first.to_dict())
        merged = first.merge(second)
        assert merged.total_instructions == 2 * first.total_instructions
