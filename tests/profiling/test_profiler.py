"""Tests for the profiler and profile data model."""

import pytest

from repro.isa.asm import assemble
from repro.machine.state import ArchState
from repro.profiling import (
    VALUE_HISTOGRAM_CAP,
    BranchProfile,
    LoadProfile,
    Profile,
    profile_many,
    profile_program,
)

BIASED = """
main:   li r1, 100
        li r3, 7
loop:   addi r1, r1, -1
        beq r1, r3, rare      # taken exactly once in 100 iterations
back:   bne r1, zero, loop
        halt
rare:   addi r2, r2, 1
        j back
"""

LOADS = """
main:   li r1, 10
loop:   lw r2, 500(zero)      # stable: always the same cell, never stored
        lw r3, 600(zero)      # will be stored to below
        sw r1, 600(zero)
        addi r1, r1, -1
        bne r1, zero, loop
        halt
        .data 500
        .word 42
"""


class TestExecCounts:
    def test_counts_and_total(self):
        profile = profile_program(assemble(BIASED))
        assert profile.total_instructions == sum(profile.exec_counts)
        assert profile.exec_counts[2] == 100  # loop body addi
        assert profile.exec_counts[0] == 1

    def test_hotness_and_cold(self):
        profile = profile_program(assemble(BIASED))
        assert profile.hotness(2) > 0.2
        assert profile.is_cold(6, threshold=0.05)  # the rare block
        assert not profile.is_cold(2, threshold=0.05)

    def test_block_count_query(self):
        profile = profile_program(assemble(BIASED))
        assert profile.block_count(2) == 100


class TestBranchProfiles:
    def test_bias_of_rare_branch(self):
        profile = profile_program(assemble(BIASED))
        branch = profile.branch_bias(3)  # beq r1, r3, rare
        assert branch is not None
        assert branch.taken == 1
        assert branch.not_taken == 99
        assert branch.bias == pytest.approx(0.99)
        assert branch.dominant_taken is False

    def test_loop_branch_mostly_taken(self):
        profile = profile_program(assemble(BIASED))
        branch = profile.branch_bias(4)  # bne back-edge
        assert branch.dominant_taken is True
        assert branch.taken == 99
        assert branch.not_taken == 1

    def test_empty_branch_profile(self):
        empty = BranchProfile()
        assert empty.bias == 0.0
        assert empty.count == 0


class TestLoadProfiles:
    def test_stable_load_detected(self):
        profile = profile_program(assemble(LOADS))
        assert profile.stable_load_value(1) == 42

    def test_stored_address_disqualifies(self):
        profile = profile_program(assemble(LOADS))
        assert profile.stable_load_value(2) is None
        assert 600 in profile.stored_addresses

    def test_min_count_respected(self):
        profile = profile_program(
            assemble("lw r1, 500(zero)\nhalt\n.data 500\n.word 9")
        )
        assert profile.stable_load_value(0, min_count=2) is None
        assert profile.stable_load_value(0, min_count=1) == 9

    def test_polymorphic_cap(self):
        load = LoadProfile()
        for value in range(VALUE_HISTOGRAM_CAP + 1):
            load.observe(100 + value, value)
        assert load.polymorphic
        assert load.dominant_value() is None
        # Further observations are cheap no-ops.
        load.observe(0, 0)
        assert load.values == {}

    def test_dominant_value_share(self):
        load = LoadProfile()
        load.observe(1, 5)
        load.observe(1, 5)
        load.observe(1, 7)
        value, share = load.dominant_value()
        assert value == 5
        assert share == pytest.approx(2 / 3)


class TestMerge:
    def test_merge_sums_counts(self):
        program = assemble(BIASED)
        first = profile_program(program)
        second = profile_program(program)
        merged = first.merge(second)
        assert merged.total_instructions == 2 * first.total_instructions
        assert merged.branches[3].taken == 2

    def test_merge_rejects_different_programs(self):
        a = profile_program(assemble(BIASED))
        b = profile_program(assemble(LOADS))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_profile_many(self):
        program = assemble(BIASED)
        merged = profile_many(
            program,
            [ArchState.initial(program), ArchState.initial(program)],
        )
        assert merged.total_instructions > 0
        assert merged.branches[3].count == 200

    def test_profile_many_requires_input(self):
        with pytest.raises(ValueError):
            profile_many(assemble(BIASED), [])


class TestSummary:
    def test_summary_fields(self):
        profile = profile_program(assemble(BIASED))
        summary = profile.summary()
        assert summary["total_instructions"] == profile.total_instructions
        assert 0 < summary["static_coverage"] <= 1.0
        assert summary["branch_sites"] == 2.0
