"""Tests for markdown report generation."""

import pytest

from repro.experiments.report import generate_report
from repro.stats import geomean


@pytest.fixture(scope="module")
def small_report():
    return generate_report(
        workload_names=["compress", "crc"], size_scale=0.2
    )


class TestGenerateReport:
    def test_structure(self, small_report):
        assert small_report.startswith("# MSSP reproduction report")
        assert "## Machine configuration" in small_report
        assert "## Per-workload results" in small_report
        assert "Geomean speedup" in small_report

    def test_one_row_per_workload(self, small_report):
        rows = [
            line for line in small_report.splitlines()
            if line.startswith("| compress") or line.startswith("| crc")
        ]
        assert len(rows) == 2

    def test_row_fields_numeric(self, small_report):
        row = next(
            line for line in small_report.splitlines()
            if line.startswith("| compress")
        )
        cells = [cell.strip() for cell in row.split("|")[2:-1]]
        assert len(cells) == 8
        for cell in cells:
            float(cell)  # every metric parses as a number

    def test_geomean_matches_rows(self, small_report):
        speedups = []
        for line in small_report.splitlines():
            if line.startswith("| compress") or line.startswith("| crc"):
                speedups.append(float(line.split("|")[8].strip()))
        stated = float(
            small_report.split("Geomean speedup vs in-order: ")[1]
            .split("x")[0]
        )
        assert stated == pytest.approx(geomean(speedups), abs=0.02)

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        output = tmp_path / "r.md"
        assert main(
            ["report", "--output", str(output), "--scale", "0.1",
             "--workloads", "compress"]
        ) == 0
        text = output.read_text()
        assert "compress" in text
        assert "wrote" in capsys.readouterr().out
