"""Tests for the experiment harness (prepare/evaluate pipeline)."""

import dataclasses

import pytest

from repro.config import (
    DistillConfig,
    MsspConfig,
    OOO_BASELINE,
    TimingConfig,
)
from repro.experiments.harness import (
    distilled_dynamic_length,
    evaluate,
    parallel_map,
    prepare,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def small_compress():
    return prepare(get_workload("compress"), size=500)


class TestPrepare:
    def test_fields_consistent(self, small_compress):
        ready = small_compress
        assert ready.name == "compress"
        assert ready.seq_instrs > 0
        assert ready.distilled_instrs > 0
        assert ready.distillation_ratio == pytest.approx(
            ready.distilled_instrs / ready.seq_instrs
        )

    def test_profile_comes_from_training_inputs(self, small_compress):
        """The profile's totals reflect two training runs, not the eval."""
        profile = small_compress.profile
        assert profile.total_instructions > small_compress.seq_instrs

    def test_custom_distill_config(self):
        coarse = prepare(
            get_workload("compress"), size=500,
            distill_config=DistillConfig(target_task_size=400),
        )
        fine = prepare(
            get_workload("compress"), size=500,
            distill_config=DistillConfig(target_task_size=25),
        )
        assert coarse.distillation.report.expected_task_size > (
            fine.distillation.report.expected_task_size
        )

    def test_distilled_dynamic_length_standalone(self, small_compress):
        length = distilled_dynamic_length(
            small_compress.distillation, small_compress.instance.program
        )
        assert length == small_compress.distilled_instrs


class TestEvaluate:
    def test_checks_equivalence_by_default(self, small_compress):
        row = evaluate(small_compress)
        assert row.counters.total_instrs == small_compress.seq_instrs
        assert row.speedup > 0

    def test_summary_fields(self, small_compress):
        row = evaluate(small_compress)
        summary = row.summary()
        assert summary["speedup"] == pytest.approx(row.speedup)
        assert summary["cycles"] == row.breakdown.total_cycles
        assert "squash_rate" in summary

    def test_baseline_selection(self, small_compress):
        inorder = evaluate(small_compress)
        ooo = evaluate(small_compress, baseline=OOO_BASELINE)
        assert ooo.speedup == pytest.approx(
            inorder.speedup * OOO_BASELINE.cpi
        )

    def test_timing_config_respected(self, small_compress):
        slow = evaluate(
            small_compress,
            timing_config=dataclasses.replace(TimingConfig(), n_slaves=1),
        )
        fast = evaluate(
            small_compress,
            timing_config=dataclasses.replace(TimingConfig(), n_slaves=8),
        )
        assert fast.speedup > slow.speedup

    def test_mssp_config_respected(self, small_compress):
        row = evaluate(
            small_compress,
            mssp_config=MsspConfig(max_task_instrs=5),
        )
        # Tiny task budget forces overruns yet equivalence still verified.
        assert row.counters.squash_reasons.get("overrun", 0) > 0

    def test_check_disabled_still_runs(self, small_compress):
        row = evaluate(small_compress, check=False)
        assert row.counters.tasks_committed > 0

    def test_parallel_runtime_matches_eager(self, small_compress):
        eager = evaluate(small_compress)
        parallel = evaluate(
            small_compress,
            mssp_config=MsspConfig(runtime="parallel", num_slaves=2),
        )
        assert parallel.mssp.records == eager.mssp.records
        assert parallel.mssp.counters == eager.mssp.counters
        assert parallel.speedup == pytest.approx(eager.speedup)


def _double(x):
    return 2 * x


class TestParallelMap:
    def test_serial_when_jobs_one(self):
        # A lambda is unpicklable; jobs<=1 must not require a pool.
        assert parallel_map(lambda x: x + 1, [1, 2, 3], jobs=1) == [2, 3, 4]

    def test_pool_path(self):
        assert parallel_map(_double, [1, 2, 3, 4], jobs=2) == [2, 4, 6, 8]

    def test_falls_back_to_serial_when_pool_unavailable(self, monkeypatch):
        import concurrent.futures

        class Unstartable:
            def __init__(self, *args, **kwargs):
                raise OSError("subprocesses forbidden")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", Unstartable
        )
        assert parallel_map(_double, [1, 2, 3], jobs=4) == [2, 4, 6]

    def test_single_item_runs_inline(self):
        assert parallel_map(lambda x: x * x, [7], jobs=8) == [49]
