"""The persistent benchmark cache and the ``repro bench`` machinery."""

import json
import pickle

import pytest

from repro.config import DistillConfig
from repro.experiments import bench, cache
from repro.isa.asm import assemble

SMALL = 6  # tiny workload size so the pipeline stays fast in tests


@pytest.fixture()
def cache_root(tmp_path, monkeypatch):
    """Point the persistent cache at a private tmpdir."""
    root = tmp_path / "bench-cache"
    monkeypatch.setenv("REPRO_BENCH_CACHE", str(root))
    return root


class TestCachePrimitives:
    def test_fetch_computes_then_hits(self, cache_root):
        calls = []

        def compute():
            calls.append(1)
            return {"answer": 42}

        value, hit = cache.fetch("unit", "k1", compute)
        assert value == {"answer": 42} and not hit
        value, hit = cache.fetch("unit", "k1", compute)
        assert value == {"answer": 42} and hit
        assert len(calls) == 1

    def test_corrupt_entry_is_a_miss_and_gets_overwritten(self, cache_root):
        cache.store("unit", "bad", [1, 2, 3])
        path = cache_root / "unit-bad.pkl"
        path.write_bytes(b"not a pickle")
        assert cache.load("unit", "bad") is None
        value, hit = cache.fetch("unit", "bad", lambda: "recomputed")
        assert value == "recomputed" and not hit
        assert pickle.loads(path.read_bytes()) == "recomputed"

    def test_disabled_cache_never_persists(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_CACHE", "off")
        assert cache.cache_dir() is None
        assert not cache.store("unit", "k", 1)
        calls = []
        for _ in range(2):
            value, hit = cache.fetch(
                "unit", "k", lambda: calls.append(1) or "fresh"
            )
            assert value == "fresh" and not hit
        assert len(calls) == 2

    def test_clear_by_kind(self, cache_root):
        cache.store("alpha", "x", 1)
        cache.store("alpha", "y", 2)
        cache.store("beta", "z", 3)
        assert cache.clear("alpha") == 2
        assert cache.load("beta", "z") == 3
        assert cache.clear() == 1


class TestDigests:
    def test_digest_sensitive_to_config(self):
        base = cache.digest("compress", SMALL, DistillConfig())
        tweaked = cache.digest(
            "compress", SMALL, DistillConfig(target_task_size=7)
        )
        assert base != tweaked
        assert base == cache.digest("compress", SMALL, DistillConfig())

    def test_program_digest_tracks_content(self):
        original = assemble(".text\nmain: li r1, 1\n halt\n")
        edited_code = assemble(".text\nmain: li r1, 2\n halt\n")
        edited_data = assemble(".text\nmain: li r1, 1\n halt\n.data\n.word 9")
        digests = {
            cache.program_digest(p)
            for p in (original, edited_code, edited_data)
        }
        assert len(digests) == 3
        twin = assemble(".text\nmain: li r1, 1\n halt\n")
        assert cache.program_digest(twin) == cache.program_digest(original)


class TestCachedPipeline:
    def test_second_invocation_hits_persistent_cache(self, cache_root):
        """Acceptance: rerunning an E-suite benchmark skips the pipeline."""
        ready, result, hit = bench.cached_functional_run(
            "compress", size=SMALL
        )
        assert not hit
        again_ready, again_result, hit = bench.cached_functional_run(
            "compress", size=SMALL
        )
        assert hit
        # The disk round-trip must be observationally lossless.
        assert again_result.final_state == result.final_state
        assert again_result.counters == result.counters
        assert again_ready.seq_instrs == ready.seq_instrs
        # And the prepare stage was cached independently.
        _, prepared_hit = bench.cached_prepare("compress", size=SMALL)
        assert prepared_hit

    def test_distinct_configs_do_not_collide(self, cache_root):
        _, _, hit = bench.cached_functional_run("compress", size=SMALL)
        assert not hit
        _, _, hit = bench.cached_functional_run(
            "compress", size=SMALL,
            distill_config=DistillConfig(target_task_size=9),
        )
        assert not hit


class TestRunBench:
    def test_summary_shape_and_baseline_gate(self, cache_root, tmp_path):
        summary = bench.run_bench(
            workloads=["compress"], scale=0.02, jobs=1, micro_repeats=1
        )
        assert summary["schema"] == cache.CACHE_SCHEMA
        micro = summary["microbenchmark"]
        assert micro["decoded_instrs_per_sec"] > 0
        assert len(summary["suite"]) == 1
        row = summary["suite"][0]
        assert row["workload"] == "compress"
        assert row["simulated_instrs"] > 0 and row["wall_seconds"] >= 0

        out = tmp_path / "BENCH_summary.json"
        bench.write_summary(summary, str(out))
        assert json.loads(out.read_text())["suite"][0]["workload"] == (
            "compress"
        )

        passing = tmp_path / "baseline-pass.json"
        passing.write_text(json.dumps(
            {"decoded_instrs_per_sec": 1, "min_speedup": 0.0}
        ))
        assert bench.check_baseline(summary, str(passing)) == []

        failing = tmp_path / "baseline-fail.json"
        failing.write_text(json.dumps(
            {"decoded_instrs_per_sec": 10 ** 15, "min_speedup": 10 ** 6}
        ))
        problems = bench.check_baseline(summary, str(failing))
        assert len(problems) == 2
        assert any("throughput regressed" in p for p in problems)
        assert any("speedup regressed" in p for p in problems)

    def test_missing_baseline_is_an_error(self, cache_root, tmp_path):
        summary = {"microbenchmark": {}}
        problems = bench.check_baseline(
            summary, str(tmp_path / "nope.json")
        )
        assert problems and "not found" in problems[0]


class TestCliBench:
    def test_bench_command_smoke(self, cache_root, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_summary.json"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"decoded_instrs_per_sec": 1, "min_speedup": 0.0}
        ))
        argv = [
            "bench", "--quick", "--scale", "0.02",
            "--workloads", "compress",
            "--output", str(out), "--baseline", str(baseline),
        ]
        assert main(argv) == 0
        summary = json.loads(out.read_text())
        assert summary["suite"][0]["cache_hit"] is False
        captured = capsys.readouterr().out
        assert "instrs/sec" in captured

        # Second CLI invocation: everything expensive comes from disk.
        assert main(argv) == 0
        summary = json.loads(out.read_text())
        assert summary["suite"][0]["cache_hit"] is True

    def test_bench_fails_on_regression(self, cache_root, tmp_path):
        from repro.cli import main

        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(
            {"decoded_instrs_per_sec": 10 ** 15}
        ))
        assert main([
            "bench", "--quick", "--scale", "0.02",
            "--workloads", "compress",
            "--output", str(tmp_path / "s.json"),
            "--baseline", str(baseline),
        ]) == 1
