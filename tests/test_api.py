"""Tests for the top-level convenience API (the README quickstart)."""

from repro import (
    ArchState,
    Program,
    ProgramBuilder,
    assemble,
    disassemble,
    distill_program,
    run_mssp,
    run_sequential,
    __version__,
)

SOURCE = """
main:   li   r1, 200
loop:   addi r1, r1, -1
        add  r2, r2, r1
        bne  r1, zero, loop
        sw   r2, 0x900(zero)
        halt
"""


class TestQuickstartPath:
    def test_readme_snippet_works(self):
        program = assemble(SOURCE)
        reference = run_sequential(program)
        result = run_mssp(program)
        assert result.final_state.diff(reference.state) == []
        assert result.counters.summary()["tasks_committed"] > 0

    def test_distill_program_default_profile(self):
        program = assemble(SOURCE)
        result = distill_program(program)
        assert result.distilled.halts
        assert result.pc_map.is_anchor(program.entry)

    def test_distill_program_explicit_profile(self):
        from repro.profiling import profile_program

        program = assemble(SOURCE)
        profile = profile_program(program)
        result = distill_program(program, profile=profile)
        assert result.report.original_static == len(program.code)

    def test_run_mssp_with_explicit_distillation(self):
        program = assemble(SOURCE)
        distillation = distill_program(program)
        result = run_mssp(program, distilled=distillation)
        reference = run_sequential(program)
        assert result.final_state.diff(reference.state) == []

    def test_exports(self):
        assert isinstance(__version__, str)
        assert Program is not None
        assert ProgramBuilder is not None
        assert ArchState is not None
        assert callable(disassemble)
