"""Exhaustive-search validation of the abstract model (Theorem 1).

These tests brute-force every commit interleaving of small task
multisets — the executable analogue of the companion paper's Maude
breadth-first search — and check its central claims:

* soundness: every terminal state is a sequential state (Theorem 1);
* the maximal path: some execution commits the entire safe chain;
* order-freedom: for a safe chain, *every* interleaving converges to
  the same final state;
* poisoned multisets: unsafe tasks are discarded, never committed.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formal.abstract import AbstractTask, seq_n
from repro.formal.bridge import arch_to_cells, make_next_fn
from repro.formal.modelcheck import (
    check_theorem_1,
    explore,
    sequential_chain,
)
from repro.isa.asm import assemble
from repro.machine.state import ArchState


def counter_next(state):
    out = dict(state)
    out[0] = out.get(0, 0) + 1
    out[1] = out.get(1, 0) + out.get(0, 0)
    return out


START = {0: 0, 1: 0}


class TestSafeChains:
    @given(
        st.lists(st.integers(min_value=1, max_value=3), min_size=1,
                 max_size=4)
    )
    @settings(max_examples=30, deadline=None)
    def test_theorem_1_over_random_chains(self, lengths):
        tasks = sequential_chain(START, lengths, counter_next)
        result = check_theorem_1(START, tasks, counter_next)
        # The maximal execution commits the whole chain.
        assert sum(lengths) in result.committed_totals()

    def test_full_chain_single_terminal_state(self):
        """A safe chain is confluent: every interleaving ends at the
        same state (some orders may discard a suffix, so totals can
        differ, but the *maximal* terminal is reachable)."""
        tasks = sequential_chain(START, [2, 1, 3], counter_next)
        result = check_theorem_1(START, tasks, counter_next)
        maximal = dict(seq_n(START, 6, counter_next))
        assert maximal in [dict(f) for f in result.terminals]

    def test_duplicate_tasks_allowed(self):
        """The task collection is a multiset: two copies of the same
        zero-progress-safe task must not break soundness."""
        chain = sequential_chain(START, [2], counter_next)
        tasks = chain + chain  # the duplicate is unsafe after the first
        check_theorem_1(START, tasks, counter_next)


class TestPoisonedMultisets:
    def test_unsafe_tasks_discarded(self):
        good = sequential_chain(START, [2], counter_next)
        bogus = AbstractTask.fresh({0: 77, 1: -1}, n=2).run_to_completion(
            counter_next
        )
        result = check_theorem_1(START, good + (bogus,), counter_next)
        # The bogus task never commits: totals only reflect the chain.
        assert result.committed_totals() <= {0, 2}
        assert 2 in result.committed_totals()

    def test_disjoint_chains_interfere_soundly(self):
        """Two chains from different start states: only the one anchored
        at the current state commits; everything stays sequential-sound."""
        here = sequential_chain(START, [1, 2], counter_next)
        elsewhere = sequential_chain({0: 9, 1: 9}, [2], counter_next)
        result = check_theorem_1(START, here + elsewhere, counter_next)
        assert 3 in result.committed_totals()

    def test_incomplete_tasks_never_commit(self):
        task = AbstractTask.fresh(dict(START), n=3)  # k = 0: not complete
        result = explore(START, (task,), counter_next)
        assert result.committed_totals() == {0}


class TestOnConcreteMachine:
    PROGRAM = assemble(
        """
        main:   li r1, 6
        loop:   addi r1, r1, -1
                add r2, r2, r1
                bne r1, zero, loop
                sw r2, 100(zero)
                halt
        """
    )

    def test_theorem_1_on_real_isa(self):
        """The exhaustive search holds over the actual Z-ISA semantics,
        not just toy counter machines."""
        next_fn = make_next_fn(self.PROGRAM)
        boot = arch_to_cells(ArchState.initial(self.PROGRAM))
        tasks = sequential_chain(boot, [4, 3, 5], next_fn)
        result = check_theorem_1(boot, tasks, next_fn)
        assert 12 in result.committed_totals()
