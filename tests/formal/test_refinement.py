"""Tests for the jumping-refinement replay checker, including negative
cases (fabricated traces that must be rejected)."""

import pytest

from repro.config import DistillConfig
from repro.distill import Distiller
from repro.errors import MsspError
from repro.formal.refinement import assert_jumping_refinement, replay_trace
from repro.isa.asm import assemble
from repro.machine.state import ArchState
from repro.mssp import MsspEngine
from repro.mssp.engine import MsspResult
from repro.mssp.trace import RecoveryRecord, TaskAttemptRecord
from repro.profiling import profile_program

SOURCE = """
main:   li r1, 50
loop:   addi r1, r1, -1
        add r2, r2, r1
        bne r1, zero, loop
        sw r2, 100(zero)
        halt
"""


def real_run():
    program = assemble(SOURCE)
    profile = profile_program(program)
    distillation = Distiller(DistillConfig(target_task_size=12)).distill(
        program, profile
    )
    result = MsspEngine(program, distillation).run()
    return program, result


def task_record(**overrides):
    fields = dict(
        tid=0, start_pc=0, end_pc=1, n_instrs=1, master_instrs=1,
        committed=True,
    )
    fields.update(overrides)
    return TaskAttemptRecord(**fields)


class TestPositive:
    def test_real_trace_replays_clean(self):
        program, result = real_run()
        report = replay_trace(program, result)
        assert report.ok, report.issues
        assert report.jumps == result.counters.tasks_committed
        assert report.jumped_instrs == result.counters.committed_instrs
        assert_jumping_refinement(program, result)  # no raise

    def test_squashed_records_do_not_advance(self):
        """A trace with an extra squashed record replays identically."""
        program, result = real_run()
        padded = MsspResult(
            final_state=result.final_state, halted=True,
            records=[task_record(committed=False, start_pc=999)]
            + list(result.records),
            counters=result.counters,
        )
        assert replay_trace(program, padded).ok


class TestNegative:
    def test_wrong_start_pc_rejected(self):
        program, result = real_run()
        # Tamper: shift the first committed task's start pc.
        tampered = []
        done = False
        for record in result.records:
            if (
                not done
                and isinstance(record, TaskAttemptRecord)
                and record.committed
            ):
                record = task_record(
                    tid=record.tid, start_pc=record.start_pc + 1,
                    end_pc=record.end_pc, n_instrs=record.n_instrs,
                    master_instrs=record.master_instrs,
                )
                done = True
            tampered.append(record)
        bad = MsspResult(
            final_state=result.final_state, halted=True, records=tampered,
            counters=result.counters,
        )
        report = replay_trace(program, bad)
        assert not report.ok
        with pytest.raises(MsspError):
            assert_jumping_refinement(program, bad)

    def test_wrong_jump_length_rejected(self):
        program, result = real_run()
        tampered = []
        done = False
        for record in result.records:
            if (
                not done
                and isinstance(record, TaskAttemptRecord)
                and record.committed
                and not record.halted
            ):
                record = task_record(
                    tid=record.tid, start_pc=record.start_pc,
                    end_pc=record.end_pc, n_instrs=record.n_instrs + 1,
                    master_instrs=record.master_instrs,
                )
                done = True
            tampered.append(record)
        bad = MsspResult(
            final_state=result.final_state, halted=True, records=tampered,
            counters=result.counters,
        )
        assert not replay_trace(program, bad).ok

    def test_wrong_final_state_rejected(self):
        program, result = real_run()
        wrong = result.final_state.copy()
        wrong.write_reg(2, wrong.read_reg(2) + 1)
        bad = MsspResult(
            final_state=wrong, halted=True, records=list(result.records),
            counters=result.counters,
        )
        report = replay_trace(program, bad)
        assert not report.ok
        assert report.issues

    def test_dropped_recovery_rejected(self):
        program, result = real_run()
        if not any(
            isinstance(r, RecoveryRecord) for r in result.records
        ):
            pytest.skip("run had no recovery to drop")
        records = [
            r for r in result.records if not isinstance(r, RecoveryRecord)
        ]
        bad = MsspResult(
            final_state=result.final_state, halted=True, records=records,
            counters=result.counters,
        )
        assert not replay_trace(program, bad).ok

    def test_empty_trace_with_nonempty_state_rejected(self):
        program, _ = real_run()
        bad = MsspResult(
            final_state=ArchState(pc=5), halted=True, records=[],
        )
        assert not replay_trace(program, bad).ok
