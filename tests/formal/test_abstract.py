"""Property tests for the abstract formal model (companion paper).

These check, executably, the laws the companion paper proves in Maude:
superimposition's algebra (Definition 8), task evolution (Lemma 2),
task safety (Definition 6), and Theorem 2 (consistency + completeness
imply safety) — the last both on synthetic ``next`` functions and on the
concrete Z-ISA machine via the bridge.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formal.abstract import (
    AbstractTask,
    consistent,
    cumulative_writes,
    mssp_run,
    seq_n,
    superimpose,
    task_safe,
)
from repro.formal.bridge import arch_to_cells, make_next_fn
from repro.isa.asm import assemble
from repro.machine.interpreter import seq
from repro.machine.state import ArchState

cells = st.dictionaries(
    st.integers(min_value=0, max_value=12),
    st.integers(min_value=-50, max_value=50),
    max_size=8,
)


#: A simple synthetic ``next``: a counter machine over cells 0..3.
def counter_next(state):
    out = dict(state)
    out[0] = out.get(0, 0) + 1
    out[1] = out.get(1, 0) + out.get(0, 0)
    return out


class TestSuperimpositionLaws:
    @given(cells, cells, cells)
    def test_associativity(self, a, b, c):
        assert superimpose(superimpose(a, b), c) == superimpose(
            a, superimpose(b, c)
        )

    @given(cells, cells, cells)
    def test_containment(self, a, b, c):
        """S1 ⊑ S2 implies (S1 ← S3) ⊑ (S2 ← S3) — for S2 extending S1."""
        combined = superimpose(b, a)  # guarantees a ⊑ combined
        assert consistent(a, combined)
        assert consistent(superimpose(a, c), superimpose(combined, c))

    @given(cells, cells)
    def test_idempotency(self, a, b):
        """S2 ⊑ S1 implies S1 ← S2 = S1."""
        host = superimpose(a, b)  # b ⊑ host
        assert superimpose(host, b) == host

    @given(cells)
    def test_empty_overlay_is_identity(self, a):
        assert superimpose(a, {}) == dict(a)

    @given(cells, cells)
    def test_overlay_wins(self, a, b):
        result = superimpose(a, b)
        for cell, value in b.items():
            assert result[cell] == value


class TestConsistency:
    @given(cells)
    def test_reflexive(self, a):
        assert consistent(a, a)

    @given(cells, cells)
    def test_subset_relation(self, a, b):
        merged = superimpose(a, b)
        assert consistent(b, merged)

    def test_value_disagreement(self):
        assert not consistent({1: 2}, {1: 3})

    def test_missing_cell(self):
        assert not consistent({1: 2}, {})


class TestTaskEvolution:
    def test_lemma_2_completion_is_seq(self):
        """⟨S_in, n, S_in, 0⟩ ⇒* ⟨S_in, n, seq(S_in, n), n⟩."""
        start = {0: 5, 1: 0}
        task = AbstractTask.fresh(start, n=4).run_to_completion(counter_next)
        assert task.complete
        assert task.live_out_state == dict(seq_n(start, 4, counter_next))
        assert task.live_in_state == start  # live-ins never change

    def test_evolution_past_completion_is_identity(self):
        task = AbstractTask.fresh({0: 1}, n=1).run_to_completion(counter_next)
        assert task.evolve(counter_next) == task

    def test_fresh_task_form(self):
        task = AbstractTask.fresh({3: 7}, n=2)
        assert task.k == 0
        assert task.live_out_state == task.live_in_state


class TestTaskSafety:
    def test_safe_task_commits_as_seq(self):
        state = {0: 2, 1: 3}
        task = AbstractTask.fresh(dict(state), n=3).run_to_completion(
            counter_next
        )
        assert task_safe(task, state, counter_next)

    def test_unsafe_when_live_in_stale(self):
        state = {0: 2, 1: 3}
        stale = {0: 99, 1: 3}
        task = AbstractTask.fresh(stale, n=3).run_to_completion(counter_next)
        assert not task_safe(task, state, counter_next)

    @given(st.integers(min_value=0, max_value=6))
    def test_theorem_2_on_counter_machine(self, n):
        """Consistency + completeness imply safety (synthetic next)."""
        state = {0: 1, 1: 2, 2: 9}  # complete for counter_next
        live_in = {0: 1, 1: 2}      # consistent subset, also complete
        task = AbstractTask.fresh(live_in, n=n).run_to_completion(counter_next)
        assert consistent(live_in, state)
        assert task_safe(task, state, counter_next)


class TestTheorem2OnConcreteMachine:
    PROGRAM = assemble(
        """
        main:   li r1, 5
        loop:   addi r1, r1, -1
                add r2, r2, r1
                bne r1, zero, loop
                sw r2, 100(zero)
                halt
        """
    )

    @given(st.integers(min_value=0, max_value=20))
    @settings(deadline=None)
    def test_full_state_live_in_is_always_safe(self, n):
        """A complete, consistent live-in (the whole state) gives a safe
        task for any length — Theorem 2 instantiated on the Z-ISA."""
        arch = ArchState.initial(self.PROGRAM)
        arch.write_reg(5, 17)
        next_fn = make_next_fn(self.PROGRAM)
        state_cells = arch_to_cells(arch)
        task = AbstractTask.fresh(state_cells, n=n).run_to_completion(next_fn)
        assert task_safe(task, state_cells, next_fn)
        # And committing equals the concrete machine's seq.
        committed = superimpose(state_cells, task.live_out_state)
        expected = arch_to_cells(seq(self.PROGRAM, arch, n))
        assert dict(committed) == expected


class TestMsspRun:
    def test_commits_safe_chain(self):
        state = {0: 0, 1: 0}
        first = AbstractTask.fresh(dict(state), n=2).run_to_completion(
            counter_next
        )
        mid = seq_n(state, 2, counter_next)
        second = AbstractTask.fresh(dict(mid), n=3).run_to_completion(
            counter_next
        )
        final, jumped = mssp_run(state, (first, second), counter_next)
        assert jumped == 5
        assert final == dict(seq_n(state, 5, counter_next))

    def test_discards_unsafe_remainder(self):
        state = {0: 0, 1: 0}
        good = AbstractTask.fresh(dict(state), n=2).run_to_completion(
            counter_next
        )
        bogus = AbstractTask.fresh({0: 42, 1: 42}, n=2).run_to_completion(
            counter_next
        )
        final, jumped = mssp_run(state, (good, bogus), counter_next)
        assert jumped == 2
        assert final == dict(seq_n(state, 2, counter_next))

    def test_order_does_not_matter_for_safety(self):
        """Committing in either order reaches the same final state when
        both orders are safe chains (the paper's commutativity insight)."""
        state = {0: 0, 1: 0}
        first = AbstractTask.fresh(dict(state), n=2).run_to_completion(
            counter_next
        )
        mid = seq_n(state, 2, counter_next)
        second = AbstractTask.fresh(dict(mid), n=1).run_to_completion(
            counter_next
        )
        forward, _ = mssp_run(state, (first, second), counter_next)
        backward, _ = mssp_run(state, (second, first), counter_next)
        assert forward == backward

    def test_cumulative_writes_compose(self):
        """Lemma 3: seq(S, n) = S ← Δ(S, n) for complete states."""
        state = {0: 1, 1: 1}
        for n in range(5):
            writes = cumulative_writes(state, n, counter_next)
            assert superimpose(state, writes) == dict(
                seq_n(state, n, counter_next)
            )
