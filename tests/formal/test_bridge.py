"""Tests for the abstract↔concrete bridge."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formal.bridge import (
    PC_CELL,
    arch_to_cells,
    cells_to_arch,
    live_sets_to_cells,
    make_next_fn,
)
from repro.isa.asm import assemble
from repro.machine.interpreter import seq
from repro.machine.state import ArchState

from tests.strategies import terminating_programs

PROGRAM = assemble(
    """
    main:   li r1, 4
    loop:   addi r1, r1, -1
            sw r1, 100(zero)
            bne r1, zero, loop
            halt
    """
)


class TestProjection:
    def test_roundtrip(self):
        state = ArchState(mem={5: 9}, pc=3)
        state.write_reg(7, -2)
        again = cells_to_arch(arch_to_cells(state))
        assert again == state

    def test_pc_cell_present(self):
        cells = arch_to_cells(ArchState(pc=11))
        assert cells[PC_CELL] == 11

    def test_sparse_zero_cells_absent(self):
        state = ArchState()
        state.store(5, 1)
        state.store(5, 0)
        assert ("mem", 5) not in arch_to_cells(state)

    def test_live_sets_projection(self):
        cells = live_sets_to_cells({1: 5}, {100: 7}, pc=(3, True))
        assert cells == {PC_CELL: 3, ("reg", 1): 5, ("mem", 100): 7}

    def test_live_sets_without_pc(self):
        cells = live_sets_to_cells({2: 9}, {})
        assert PC_CELL not in cells


class TestNextFn:
    def test_matches_concrete_step(self):
        next_fn = make_next_fn(PROGRAM)
        state = ArchState(pc=PROGRAM.entry)
        for n in range(12):
            expected = arch_to_cells(seq(PROGRAM, state, n))
            actual = arch_to_cells(state)
            for _ in range(n):
                actual = next_fn(actual)
            assert dict(actual) == expected

    def test_halted_state_is_fixed_point(self):
        next_fn = make_next_fn(PROGRAM)
        final = seq(PROGRAM, ArchState(pc=PROGRAM.entry), 10_000)
        cells = arch_to_cells(final)
        assert dict(next_fn(cells)) == dict(cells)

    def test_out_of_range_pc_is_fixed_point(self):
        next_fn = make_next_fn(PROGRAM)
        cells = arch_to_cells(ArchState(pc=999))
        assert dict(next_fn(cells)) == dict(cells)

    @given(terminating_programs(), st.integers(min_value=0, max_value=25))
    @settings(max_examples=10, deadline=None)
    def test_commutes_with_seq_random(self, program, n):
        next_fn = make_next_fn(program)
        boot = ArchState.initial(program)
        via_abstract = arch_to_cells(boot)
        for _ in range(n):
            via_abstract = next_fn(via_abstract)
        via_concrete = arch_to_cells(seq(program, boot, n))
        assert dict(via_abstract) == via_concrete
