"""E2 — distilled-program effectiveness.

Reproduces the paper's distillation table: the distilled program's
dynamic path length as a fraction of the original program's, plus the
static code-size ratio and the passes' contributions.

Expected shape: most workloads land well below 1.0 (the paper reports
roughly a quarter to a half); the regular kernels (matmul, sort) stay
near or above 1.0 — distillation has nothing to remove there and the
fork machinery costs a little.
"""

from repro.stats import Table, mean

from benchmarks.common import SUITE, prepared, report, run_once


def run_e2():
    table = Table(
        ["benchmark", "orig dyn", "distilled dyn", "dyn ratio",
         "static ratio", "anchors"],
        title="E2: distillation effectiveness (paper: distilled size table)",
    )
    ratios = []
    for name in SUITE:
        ready = prepared(name)
        rep = ready.distillation.report
        ratios.append(ready.distillation_ratio)
        table.add_row(
            name, ready.seq_instrs, ready.distilled_instrs,
            ready.distillation_ratio, rep.static_ratio, len(rep.anchors),
        )
    table.add_row("mean", "", "", mean(ratios), "", "")
    return table, ratios


def test_e2_distillation(benchmark):
    table, ratios = run_once(benchmark, run_e2)
    report("e2_distillation", table)
    assert mean(ratios) < 0.95
    assert min(ratios) < 0.6  # the most distillable workload
