"""E6 — sensitivity to interconnect / checkpoint latency.

Reproduces the paper's communication-latency study: all MSSP-specific
latencies (checkpoint spawn, commit, squash, restart) scale together
from 0x to 8x of the default, replaying the same functional traces.

Expected shape: graceful degradation as latency grows, steeper for the
workloads with smaller tasks (overheads amortize over fewer
instructions).
"""

from repro.config import TimingConfig
from repro.stats import Table, geomean

from benchmarks.common import SWEEP_SUITE, report, run_once, timed_row

LATENCY_SCALES = (0.0, 0.5, 1.0, 2.0, 4.0, 8.0)


def run_e6():
    table = Table(
        ["benchmark"] + [f"{s:g}x latency" for s in LATENCY_SCALES],
        title="E6: speedup vs interconnect latency (paper: latency study)",
    )
    series = {s: [] for s in LATENCY_SCALES}
    for name in SWEEP_SUITE:
        speedups = []
        for scale in LATENCY_SCALES:
            config = TimingConfig().scaled_latencies(scale)
            row = timed_row(name, timing_config=config)
            speedups.append(row.speedup)
            series[scale].append(row.speedup)
        table.add_row(name, *speedups)
    table.add_row(
        "geomean", *[geomean(series[s]) for s in LATENCY_SCALES]
    )
    return table, series


def test_e6_latency(benchmark):
    table, series = run_once(benchmark, run_e6)
    report("e6_latency", table)
    means = [geomean(series[s]) for s in LATENCY_SCALES]
    # Monotone non-increasing in latency.
    assert all(a >= b - 1e-9 for a, b in zip(means, means[1:]))
    # Zero-latency MSSP is strictly better than 8x-latency MSSP.
    assert means[0] > means[-1]
