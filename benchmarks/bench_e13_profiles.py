"""E13 — profile-quality sensitivity (the train/ref methodology).

The paper distills with *training* inputs and evaluates on *reference*
inputs; this experiment quantifies how much that methodology matters by
distilling each workload three ways:

* **single** — profile from one training input (value specialization
  can latch onto input-specific accidents);
* **train** — the default: two training inputs merged;
* **oracle** — profile the evaluation input itself (self-profiling:
  the ceiling for any profile-driven distiller).

Expected shape: live-in accuracy and speedup are ordered
single ≤ train ≤ oracle, with the gaps concentrated in the workloads
whose behaviour drifts across inputs (hashlookup, fib_memo); the
bias/cold structure of the others is input-stable, so their three
columns coincide — which is itself the finding that makes profile-guided
distillation viable.
"""

from repro.experiments import evaluate, prepare
from repro.stats import Table, geomean, mean
from repro.workloads import get_workload

from benchmarks.common import bench_size, report, run_once

SUBJECTS = ("hashlookup", "fib_memo", "compress", "crc", "stringops")
SOURCES = ("single", "train", "eval")
LABELS = {"single": "single", "train": "train (default)", "eval": "oracle"}
SWEEP_SCALE = 0.5


def run_e13():
    table = Table(
        ["benchmark"]
        + [f"{LABELS[s]} squash" for s in SOURCES]
        + [f"{LABELS[s]} speedup" for s in SOURCES],
        title="E13: distillation profile quality (train/ref methodology)",
    )
    squash = {s: [] for s in SOURCES}
    speed = {s: [] for s in SOURCES}
    for name in SUBJECTS:
        size = bench_size(name, scale=SWEEP_SCALE)
        row_cells = []
        for source in SOURCES:
            prepared = prepare(
                get_workload(name), size=size, profile_source=source
            )
            row = evaluate(prepared)
            squash[source].append(row.counters.squash_rate)
            speed[source].append(row.speedup)
        table.add_row(
            name,
            *[squash[s][-1] for s in SOURCES],
            *[speed[s][-1] for s in SOURCES],
        )
    table.add_row(
        "mean/geomean",
        *[mean(squash[s]) for s in SOURCES],
        *[geomean(speed[s]) for s in SOURCES],
    )
    return table, squash, speed


def test_e13_profiles(benchmark):
    table, squash, speed = run_once(benchmark, run_e13)
    report("e13_profiles", table)
    # Methodology ordering: better profiles never squash more on average.
    assert mean(squash["eval"]) <= mean(squash["train"]) + 1e-9
    assert mean(squash["train"]) <= mean(squash["single"]) + 1e-9
    # The oracle profile has (near-)zero squashes: all residual
    # misprediction in the default setup is train/ref divergence.
    assert mean(squash["eval"]) < 0.005
    # And speedup follows the same ordering.
    assert geomean(speed["train"]) >= geomean(speed["single"]) - 1e-9
    # The quasi-constant trap: crc's per-input salt looks stable to a
    # single-input profile (catastrophic specialization), and the
    # two-input discipline catches it completely.
    crc_index = SUBJECTS.index("crc")
    assert squash["single"][crc_index] > 0.2
    assert squash["train"][crc_index] == 0.0
