"""E8 — distillation-pass ablation (design-choice study).

DESIGN.md calls out four optimization passes as the distiller's levers;
this experiment disables each in turn and reports the resulting dynamic
distillation ratio and speedup on the representative workloads — the
ablation the paper's design discussion implies.

Expected shape: the full distiller dominates; disabling branch assertion
or DCE costs the most (they feed each other); value specialization
matters on the workloads built around stable loads (compress, crc).
"""

import dataclasses

from repro.config import DistillConfig
from repro.stats import Table, geomean, mean

from benchmarks.common import (
    SWEEP_SUITE,
    bench_size,
    prepared,
    report,
    run_once,
    timed_row,
)

SWEEP_SCALE = 0.5

#: The sweep subset plus the workloads built around stable loads (crc)
#: and write-only buffers (stringops), so every pass has a witness.
ABLATION_SUITE = SWEEP_SUITE + ("crc", "stringops")

VARIANTS = (
    ("full", DistillConfig()),
    ("no branch_removal", DistillConfig().without_pass("branch_removal")),
    ("no cold_code", DistillConfig().without_pass("cold_code")),
    ("no value_spec", DistillConfig().without_pass("value_spec")),
    ("no store_elim", DistillConfig().without_pass("store_elim")),
    ("no dce", DistillConfig().without_pass("dce")),
)


def run_e8():
    table = Table(
        ["variant", "mean dyn ratio", "geomean speedup"],
        title="E8: distillation pass ablation (design-choice study)",
    )
    by_variant = {}
    for label, config in VARIANTS:
        ratios, speedups = [], []
        for name in ABLATION_SUITE:
            size = bench_size(name, scale=SWEEP_SCALE)
            ready = prepared(name, size=size, distill_config=config)
            ratios.append(ready.distillation_ratio)
            row = timed_row(name, size=size, distill_config=config)
            speedups.append(row.speedup)
        by_variant[label] = (mean(ratios), geomean(speedups))
        table.add_row(label, *by_variant[label])
    return table, by_variant


def test_e8_ablation(benchmark):
    table, by_variant = run_once(benchmark, run_e8)
    report("e8_ablation", table)
    full_ratio, full_speedup = by_variant["full"]
    # Every ablation yields a distilled program at least as long as full.
    for label, (ratio, speedup) in by_variant.items():
        if label != "full":
            assert ratio >= full_ratio - 1e-9, label
    # Losing dead-code elimination hurts the master's path length most
    # (asserted branches leave their condition chains behind).
    assert by_variant["no dce"][0] > full_ratio + 0.05
    # And the full distiller has the best (or tied-best) speedup.
    assert full_speedup >= max(s for _, s in by_variant.values()) - 0.05
