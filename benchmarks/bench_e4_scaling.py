"""E4 — scalability with slave-processor count.

Reproduces the paper's processor-count sensitivity figure: speedup of
the representative workloads at 1, 2, 4, 8 and 16 slaves (same
functional run replayed through the timing model, since commit order —
and therefore the trace — is independent of timing).

Expected shape: monotone non-decreasing in slave count, with saturating
returns once slaves keep pace with the master's fork rate.
"""

import dataclasses

from repro.config import TimingConfig
from repro.stats import Table, geomean

from benchmarks.common import SWEEP_SUITE, report, run_once, timed_row

SLAVE_COUNTS = (1, 2, 4, 8, 16)


def run_e4():
    table = Table(
        ["benchmark"] + [f"{n} slaves" for n in SLAVE_COUNTS],
        title="E4: speedup vs slave count (paper: scalability figure)",
    )
    series = {n: [] for n in SLAVE_COUNTS}
    for name in SWEEP_SUITE:
        speedups = []
        for n in SLAVE_COUNTS:
            config = dataclasses.replace(TimingConfig(), n_slaves=n)
            row = timed_row(name, timing_config=config)
            speedups.append(row.speedup)
            series[n].append(row.speedup)
        table.add_row(name, *speedups)
    table.add_row("geomean", *[geomean(series[n]) for n in SLAVE_COUNTS])
    return table, series


def test_e4_scaling(benchmark):
    table, series = run_once(benchmark, run_e4)
    report("e4_scaling", table)
    means = [geomean(series[n]) for n in SLAVE_COUNTS]
    # Monotone non-decreasing...
    assert all(b >= a - 1e-9 for a, b in zip(means, means[1:]))
    # ...with saturating returns: the 8->16 step is smaller than 1->2.
    assert (means[-1] - means[-2]) < (means[1] - means[0])
    # Single-slave MSSP cannot beat the sequential core by much.
    assert means[0] < 1.2
