"""E7 — execution-time breakdown.

Reproduces the paper's where-does-the-time-go analysis: per benchmark,
whether task completion was limited by the master (fork rate), the
slaves (task execution), or commit serialization, plus cycles lost to
squash overhead and non-speculative recovery, and the master's stall
time waiting for free slaves.

Expected shape: distillable workloads are slave- or commit-limited (the
master runs well ahead — the design goal); squash/recovery cycles are a
small fraction everywhere at default distillation settings.
"""

from repro.stats import Table

from benchmarks.common import SUITE, report, run_once, timed_row


def run_e7():
    table = Table(
        ["benchmark", "cycles", "master-bnd", "slave-bnd", "commit-bnd",
         "stall cyc", "squash cyc", "recovery cyc"],
        title="E7: execution-time breakdown (paper: bottleneck analysis)",
    )
    rows = {}
    for name in SUITE:
        row = timed_row(name)
        b = row.breakdown
        rows[name] = b
        table.add_row(
            name, b.total_cycles, b.master_bound_tasks, b.slave_bound_tasks,
            b.commit_bound_tasks, b.master_stall_cycles,
            b.squash_overhead_cycles, b.recovery_cycles,
        )
    return table, rows


def test_e7_breakdown(benchmark):
    table, rows = run_once(benchmark, run_e7)
    report("e7_breakdown", table)
    for name, b in rows.items():
        total_tasks = (
            b.master_bound_tasks + b.slave_bound_tasks + b.commit_bound_tasks
        )
        assert total_tasks > 0, name
        # Recovery is a small fraction of total time at default settings.
        assert b.recovery_cycles < 0.25 * b.total_cycles, name
    # The design goal: the master is NOT the bottleneck for the majority
    # of tasks in the majority of workloads.
    slave_side = sum(
        1 for b in rows.values()
        if b.slave_bound_tasks + b.commit_bound_tasks > b.master_bound_tasks
    )
    assert slave_side >= len(rows) // 2
