"""E5 — sensitivity to task size.

Reproduces the paper's task-granularity study: the distiller re-targets
fork placement at several task sizes and the whole pipeline re-runs.
Small tasks drown in per-task overhead (spawn + commit latency per few
instructions); very large tasks lose parallelism (too few tasks in
flight) and risk overruns.

Expected shape: an inverted U with the knee around ~100-300 instructions
for this machine's overheads (spawn 30 + commit 10 cycles).
"""

import dataclasses

from repro.config import DistillConfig
from repro.stats import Table, geomean

from benchmarks.common import (
    SWEEP_SUITE,
    bench_size,
    report,
    run_once,
    timed_row,
)

TASK_SIZES = (25, 75, 150, 400, 1200)

#: Sweeps re-distill and re-run per point: use reduced workload sizes.
SWEEP_SCALE = 0.5


def run_e5():
    table = Table(
        ["benchmark"] + [f"target {t}" for t in TASK_SIZES],
        title="E5: speedup vs target task size (paper: granularity study)",
    )
    series = {t: [] for t in TASK_SIZES}
    for name in SWEEP_SUITE:
        speedups = []
        for target in TASK_SIZES:
            config = dataclasses.replace(
                DistillConfig(), target_task_size=target
            )
            row = timed_row(
                name,
                size=bench_size(name, scale=SWEEP_SCALE),
                distill_config=config,
            )
            speedups.append(row.speedup)
            series[target].append(row.speedup)
        table.add_row(name, *speedups)
    table.add_row("geomean", *[geomean(series[t]) for t in TASK_SIZES])
    return table, series


def test_e5_task_size(benchmark):
    table, series = run_once(benchmark, run_e5)
    report("e5_task_size", table)
    means = [geomean(series[t]) for t in TASK_SIZES]
    best = max(range(len(TASK_SIZES)), key=lambda i: means[i])
    # The knee is interior: neither the smallest nor the largest size wins.
    assert 0 < best < len(TASK_SIZES) - 1
    # Tiny tasks are clearly overhead-bound relative to the best point.
    assert means[0] < 0.8 * means[best]
