"""E1 — headline speedup figure.

Reproduces the MICRO-2002 evaluation's main result: MSSP speedup per
benchmark on the default machine (1 master + 8 slaves), against both the
1-wide in-order baseline and the idealized 4-wide OOO core the paper
compares with, with a geometric-mean summary row.

Expected shape: geomean > 1 against both baselines; distillable
workloads (compress, pointer_chase, branchy, ...) lead; regular kernels
(matmul, sort) trail.
"""

from repro.config import OOO_BASELINE, SEQUENTIAL_BASELINE
from repro.stats import Table, geomean
from repro.timing import baseline_cycles

from benchmarks.common import SUITE, report, run_once, timed_row


def run_e1():
    table = Table(
        ["benchmark", "seq instrs", "mssp cycles", "speedup vs in-order",
         "speedup vs ooo-4wide"],
        title="E1: MSSP speedup, 8 slaves (paper: headline figure)",
    )
    inorder, ooo = [], []
    for name in SUITE:
        row = timed_row(name)
        cycles = row.breakdown.total_cycles
        s_inorder = baseline_cycles(row.seq_instrs, SEQUENTIAL_BASELINE) / cycles
        s_ooo = baseline_cycles(row.seq_instrs, OOO_BASELINE) / cycles
        inorder.append(s_inorder)
        ooo.append(s_ooo)
        table.add_row(name, row.seq_instrs, cycles, s_inorder, s_ooo)
    table.add_row("geomean", "", "", geomean(inorder), geomean(ooo))
    return table, geomean(inorder), geomean(ooo)


def test_e1_speedup(benchmark):
    table, g_inorder, g_ooo = run_once(benchmark, run_e1)
    report("e1_speedup", table)
    # Shape: MSSP wins on average against both baselines.
    assert g_inorder > 1.5
    assert g_ooo > 1.0
