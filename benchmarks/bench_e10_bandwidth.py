"""E10 — checkpoint size and master-to-slave bandwidth sensitivity.

The paper ships only master-modified values to bound checkpoint
bandwidth; this experiment quantifies that design point on our machine:
per workload, the mean checkpoint size (register file + dirty memory
words) and the speedup as the per-word transfer cost rises from free to
expensive.

Expected shape: checkpoint sizes grow with how much memory the master
dirties (store-heavy workloads like sort/treewalk ship more); speedup
degrades smoothly with per-word cost, fastest for the large-checkpoint
workloads.
"""

import dataclasses

from repro.config import MsspConfig, TimingConfig
from repro.mssp.trace import TaskAttemptRecord
from repro.stats import Table, geomean, mean

from benchmarks.common import SUITE, functional_run, report, run_once, timed_row

WORD_COSTS = (0.0, 0.05, 0.2, 1.0)

DELTA_MODE = MsspConfig(checkpoint_mode="delta")


def _mean_checkpoint_words(result) -> float:
    return mean(
        [
            r.checkpoint_words
            for r in result.records
            if isinstance(r, TaskAttemptRecord)
        ]
    )


def run_e10():
    table = Table(
        ["benchmark", "cumul words", "delta words"]
        + [f"cumul@{c:g}/w" for c in WORD_COSTS[1:]]
        + [f"delta@{WORD_COSTS[-1]:g}/w"],
        title="E10: checkpoint size and bandwidth sensitivity "
              "(cumulative vs delta shipping)",
    )
    sizes, delta_sizes = {}, {}
    series = {c: [] for c in WORD_COSTS}
    delta_series = []
    for name in SUITE:
        _, result = functional_run(name)
        _, delta_result = functional_run(name, None, None, DELTA_MODE)
        sizes[name] = _mean_checkpoint_words(result)
        delta_sizes[name] = _mean_checkpoint_words(delta_result)
        speedups = []
        for cost in WORD_COSTS:
            config = dataclasses.replace(
                TimingConfig(), checkpoint_word_latency=cost
            )
            row = timed_row(name, timing_config=config)
            speedups.append(row.speedup)
            series[cost].append(row.speedup)
        worst_cost = dataclasses.replace(
            TimingConfig(), checkpoint_word_latency=WORD_COSTS[-1]
        )
        delta_row = timed_row(
            name, timing_config=worst_cost, mssp_config=DELTA_MODE
        )
        delta_series.append(delta_row.speedup)
        table.add_row(
            name, sizes[name], delta_sizes[name],
            *speedups[1:], delta_row.speedup,
        )
    table.add_row(
        "geomean", "", "",
        *[geomean(series[c]) for c in WORD_COSTS[1:]],
        geomean(delta_series),
    )
    return table, sizes, delta_sizes, series, delta_series


def test_e10_bandwidth(benchmark):
    table, sizes, delta_sizes, series, delta_series = run_once(
        benchmark, run_e10
    )
    report("e10_bandwidth", table)
    # Checkpoints always include the 32-register file.
    assert min(sizes.values()) >= 32
    # Delta shipping never sends more than cumulative.
    for name in sizes:
        assert delta_sizes[name] <= sizes[name] + 1e-9
    # Speedup is monotone non-increasing in per-word cost.
    means = [geomean(series[c]) for c in WORD_COSTS]
    assert all(a >= b - 1e-9 for a, b in zip(means, means[1:]))
    # At the harshest bandwidth, delta shipping beats cumulative.
    assert geomean(delta_series) > means[-1]
