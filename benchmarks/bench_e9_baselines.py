"""E9 — baseline comparison.

Reproduces the paper's machine-comparison context: the full suite
against (a) the 1-wide in-order core, (b) the idealized 4-wide OOO core
(the class of machine the paper's baseline superscalar represents), and
(c) MSSP with its master slowed to slave speed — isolating how much of
MSSP's win comes from the fast master vs. from task parallelism.

Expected shape: MSSP beats the OOO baseline on distillable workloads;
the slow-master variant gives up a large share of the win, confirming
that the master's shortened program is the enabling mechanism.
"""

import dataclasses

from repro.config import OOO_BASELINE, SEQUENTIAL_BASELINE, TimingConfig
from repro.stats import Table, geomean
from repro.timing import baseline_cycles

from benchmarks.common import SUITE, report, run_once, timed_row


def run_e9():
    table = Table(
        ["benchmark", "vs in-order", "vs ooo-4wide", "slow-master speedup"],
        title="E9: baseline comparison and master-speed isolation",
    )
    inorder, ooo, slow = [], [], []
    slow_master = dataclasses.replace(TimingConfig(), master_cpi=1.0)
    for name in SUITE:
        fast = timed_row(name)
        cycles = fast.breakdown.total_cycles
        s_in = baseline_cycles(fast.seq_instrs, SEQUENTIAL_BASELINE) / cycles
        s_ooo = baseline_cycles(fast.seq_instrs, OOO_BASELINE) / cycles
        slow_row = timed_row(name, timing_config=slow_master)
        inorder.append(s_in)
        ooo.append(s_ooo)
        slow.append(slow_row.speedup)
        table.add_row(name, s_in, s_ooo, slow_row.speedup)
    table.add_row("geomean", geomean(inorder), geomean(ooo), geomean(slow))
    return table, geomean(inorder), geomean(ooo), geomean(slow)


def test_e9_baselines(benchmark):
    table, g_in, g_ooo, g_slow = run_once(benchmark, run_e9)
    report("e9_baselines", table)
    assert g_in > g_ooo > 0.8  # OOO baseline is a harder comparison
    # A slower master costs real speedup: the fast path is load-bearing.
    assert g_slow < g_in
