"""E3 — live-in prediction accuracy and task squash rate.

Reproduces the paper's verification-success data: per benchmark, the
fraction of live-in values the master predicted correctly, the fraction
of task attempts squashed, and where progress came from (speculative
coverage).  Training and evaluation inputs differ (train vs. ref), so
residual mispredictions are real, not simulated noise.

Expected shape: live-in accuracy >= ~95% everywhere and squash rates in
the low percent — MSSP only wins because verification almost always
succeeds, which is exactly the paper's observation.
"""

from repro.stats import Table, mean

from benchmarks.common import SUITE, functional_run, report, run_once


def run_e3():
    table = Table(
        ["benchmark", "tasks", "squashed", "squash rate", "live-in acc",
         "spec coverage", "restarts"],
        title="E3: live-in prediction accuracy / squash rates",
    )
    accuracies, squash_rates = [], []
    for name in SUITE:
        _, result = functional_run(name)
        c = result.counters
        accuracies.append(c.live_in_accuracy)
        squash_rates.append(c.squash_rate)
        table.add_row(
            name, c.task_attempts, c.tasks_squashed, c.squash_rate,
            c.live_in_accuracy, c.speculative_coverage, c.restarts,
        )
    table.add_row(
        "mean", "", "", mean(squash_rates), mean(accuracies), "", "",
    )
    return table, accuracies, squash_rates


def test_e3_accuracy(benchmark):
    table, accuracies, squash_rates = run_once(benchmark, run_e3)
    report("e3_accuracy", table)
    assert min(accuracies) > 0.95
    assert mean(squash_rates) < 0.10
