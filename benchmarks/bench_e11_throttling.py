"""E11 — dual-mode throttling under degraded masters.

The real MSSP machine can revert to plain sequential execution when
speculation persistently fails (a capability the formal model
deliberately omitted).  This experiment corrupts the distilled program
at increasing severities and compares the engine with and without
throttling: total machine cycles and the number of doomed task attempts.

Expected shape: on a healthy master throttling is inert; as corruption
grows, the throttled engine wastes far fewer attempts and finishes in
fewer cycles, degrading toward (not below) sequential speed.
"""

import dataclasses

from repro.config import MsspConfig, TimingConfig
from repro.mssp import MsspEngine
from repro.mssp.faults import corrupt_distilled
from repro.stats import Table
from repro.timing import simulate_mssp

from benchmarks.common import bench_size, prepared, report, run_once

WORKLOAD = "branchy"
SEVERITIES = (0.0, 0.1, 0.3, 0.6)

BOUNDED = MsspConfig(max_task_instrs=5_000, max_master_instrs_per_task=5_000)
THROTTLED = dataclasses.replace(
    BOUNDED, throttle_threshold=0.5, throttle_window=8, throttle_chunk=2_000
)


def run_e11():
    ready = prepared(WORKLOAD, size=bench_size(WORKLOAD, scale=0.5))
    program = ready.instance.program
    table = Table(
        ["corruption", "plain squashes", "throttled squashes",
         "throttle episodes", "plain speedup", "throttled speedup"],
        title="E11: dual-mode throttling vs master corruption",
    )
    rows = []
    for severity in SEVERITIES:
        distilled = corrupt_distilled(
            ready.distillation.distilled, len(program.code),
            seed=42, severity=severity,
        )
        bundle = (distilled, ready.distillation.pc_map)
        plain = MsspEngine(program, bundle, BOUNDED).run()
        throttled = MsspEngine(program, bundle, THROTTLED).run()
        assert plain.final_state.diff(throttled.final_state) == []
        plain_cycles = simulate_mssp(plain, TimingConfig()).total_cycles
        throttled_cycles = simulate_mssp(
            throttled, TimingConfig()
        ).total_cycles
        row = {
            "severity": severity,
            "plain_squashes": plain.counters.tasks_squashed,
            "throttled_squashes": throttled.counters.tasks_squashed,
            "episodes": throttled.counters.throttle_episodes,
            "plain_speedup": ready.seq_instrs / plain_cycles,
            "throttled_speedup": ready.seq_instrs / throttled_cycles,
        }
        rows.append(row)
        table.add_row(
            f"{severity:.0%}", row["plain_squashes"],
            row["throttled_squashes"], row["episodes"],
            row["plain_speedup"], row["throttled_speedup"],
        )
    return table, rows


def test_e11_throttling(benchmark):
    table, rows = run_once(benchmark, run_e11)
    report("e11_throttling", table)
    healthy = rows[0]
    worst = rows[-1]
    # Inert on a healthy master.
    assert healthy["episodes"] == 0
    assert healthy["plain_speedup"] == healthy["throttled_speedup"]
    # Under heavy corruption, throttling engages and cuts wasted work.
    assert worst["episodes"] > 0
    assert worst["throttled_squashes"] < worst["plain_squashes"]
    assert worst["throttled_speedup"] >= worst["plain_speedup"]
