"""E12 — memory-system sensitivity and the value of load removal.

Under the uniform-CPI model a specialized load (``lw`` → ``li``) costs
the master nothing, understating the paper's motivation for value
specialization.  This experiment charges ``load_penalty`` extra cycles
per memory load — on the master, the slaves, the recovery path *and*
the baseline, so comparisons stay fair — and re-measures MSSP speedup
with and without value specialization on the load-heavy workloads.

Expected shape: speedup is roughly load-penalty-neutral when the
distilled and original programs have similar load mixes, but the
workloads whose hot-loop loads the distiller can specialize away (crc's
polynomial) gain visibly as loads get more expensive — and lose that
gain when value specialization is ablated.
"""

import dataclasses

from repro.config import DistillConfig, SEQUENTIAL_BASELINE, TimingConfig
from repro.stats import Table, geomean
from repro.timing import baseline_cycles

from benchmarks.common import bench_size, report, run_once, timed_row

SUBJECTS = ("crc", "compress", "pointer_chase", "fib_memo")
LOAD_PENALTIES = (0.0, 1.0, 3.0)
SWEEP_SCALE = 0.5

NO_VSPEC = DistillConfig().without_pass("value_spec")


def _speedup(row, penalty: float) -> float:
    baseline = dataclasses.replace(
        SEQUENTIAL_BASELINE, load_penalty=penalty
    )
    return baseline_cycles(
        row.seq_instrs, baseline, row.seq_loads
    ) / row.breakdown.total_cycles


def run_e12():
    table = Table(
        ["benchmark"]
        + [f"full@{p:g}" for p in LOAD_PENALTIES]
        + [f"no-vspec@{LOAD_PENALTIES[-1]:g}"],
        title="E12: speedup vs load penalty (memory-system sensitivity)",
    )
    full_series = {p: [] for p in LOAD_PENALTIES}
    ablated_series = []
    for name in SUBJECTS:
        size = bench_size(name, scale=SWEEP_SCALE)
        speedups = []
        for penalty in LOAD_PENALTIES:
            timing = dataclasses.replace(
                TimingConfig(), load_penalty=penalty
            )
            row = timed_row(name, timing_config=timing, size=size)
            speedups.append(_speedup(row, penalty))
            full_series[penalty].append(speedups[-1])
        worst = dataclasses.replace(
            TimingConfig(), load_penalty=LOAD_PENALTIES[-1]
        )
        ablated_row = timed_row(
            name, timing_config=worst, size=size, distill_config=NO_VSPEC
        )
        ablated = _speedup(ablated_row, LOAD_PENALTIES[-1])
        ablated_series.append(ablated)
        table.add_row(name, *speedups, ablated)
    table.add_row(
        "geomean",
        *[geomean(full_series[p]) for p in LOAD_PENALTIES],
        geomean(ablated_series),
    )
    return table, full_series, ablated_series


def test_e12_memory(benchmark):
    table, full_series, ablated_series = run_once(benchmark, run_e12)
    report("e12_memory", table)
    worst = LOAD_PENALTIES[-1]
    # With expensive loads, the full distiller beats the no-value-spec
    # ablation (it removed hot-loop loads the ablation kept).
    assert geomean(full_series[worst]) > geomean(ablated_series)
    # And crc — the flagship specialization target — gains from load
    # penalties relative to its ablated self by a visible margin.
    crc_index = SUBJECTS.index("crc")
    assert full_series[worst][crc_index] > ablated_series[crc_index] * 1.03
