"""Shared infrastructure for the experiment benchmarks (E1-E9).

Conventions:

* each ``bench_eN_*.py`` module reproduces one table/figure of the
  (reconstructed) MICRO-2002 evaluation and prints the same rows the
  paper reports;
* expensive pipeline stages are cached per (workload, size, distiller
  config) so that timing-only sweeps (slave count, latency, baselines)
  replay one functional run many times instead of re-simulating;
* every table is also written to ``benchmarks/out/<experiment>.txt`` so
  results survive pytest's output capturing.

Scale: set the ``REPRO_BENCH_SCALE`` environment variable (a float,
default 1.0) to shrink or grow workload sizes uniformly.
"""

from __future__ import annotations

import os
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.config import DistillConfig, MsspConfig, TimingConfig
from repro.experiments.harness import (
    EvaluationRow,
    PreparedWorkload,
    evaluate,
    prepare,
)
from repro.mssp.engine import MsspResult
from repro.stats import Table
from repro.timing import simulate_mssp
from repro.workloads import REPRESENTATIVE, WORKLOADS, get_workload

OUT_DIR = Path(__file__).parent / "out"

#: All suite workloads in registry order.
SUITE = tuple(WORKLOADS)

#: The sweep subset (see repro.workloads.registry.REPRESENTATIVE).
SWEEP_SUITE = REPRESENTATIVE


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_size(name: str, scale: Optional[float] = None) -> int:
    """Workload size used by the benchmarks (scaled default)."""
    scale = bench_scale() if scale is None else scale
    return max(4, int(get_workload(name).default_size * scale))


@lru_cache(maxsize=None)
def prepared(
    name: str,
    size: Optional[int] = None,
    distill_config: Optional[DistillConfig] = None,
) -> PreparedWorkload:
    """Cached profile+distill for one workload configuration."""
    return prepare(
        get_workload(name),
        size=size if size is not None else bench_size(name),
        distill_config=distill_config,
    )


@lru_cache(maxsize=None)
def functional_run(
    name: str,
    size: Optional[int] = None,
    distill_config: Optional[DistillConfig] = None,
    mssp_config: Optional[MsspConfig] = None,
) -> Tuple[PreparedWorkload, MsspResult]:
    """Cached equivalence-checked MSSP run (the expensive stage)."""
    ready = prepared(name, size, distill_config)
    row = evaluate(ready, mssp_config=mssp_config)
    return ready, row.mssp


def timed_row(
    name: str,
    timing_config: Optional[TimingConfig] = None,
    size: Optional[int] = None,
    distill_config: Optional[DistillConfig] = None,
    mssp_config: Optional[MsspConfig] = None,
) -> EvaluationRow:
    """One workload under one machine configuration (cheap replays)."""
    ready, result = functional_run(name, size, distill_config, mssp_config)
    breakdown = simulate_mssp(result, timing_config)
    return EvaluationRow(
        name=name, seq_instrs=ready.seq_instrs, mssp=result,
        breakdown=breakdown, seq_loads=ready.seq_loads,
    )


def report(experiment: str, table: Table) -> str:
    """Print the table and persist it under ``benchmarks/out/``."""
    rendered = table.render()
    print()
    print(rendered)
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUT_DIR / f"{experiment}.txt").write_text(rendered + "\n")
    return rendered


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
