"""Shared infrastructure for the experiment benchmarks (E1-E9).

Conventions:

* each ``bench_eN_*.py`` module reproduces one table/figure of the
  (reconstructed) MICRO-2002 evaluation and prints the same rows the
  paper reports;
* expensive pipeline stages (profile → distill → MSSP functional run)
  are cached per (workload content, size, distiller config, engine
  config) in the **persistent** artifact cache under
  ``benchmarks/cache/`` (see :mod:`repro.experiments.cache`), so a
  second invocation of any benchmark — same process or not — replays
  from disk instead of re-simulating; timing-only sweeps (slave count,
  latency, baselines) then replay one functional run many times;
* every table is also written to ``benchmarks/out/<experiment>.txt`` so
  results survive pytest's output capturing.

Scale: set the ``REPRO_BENCH_SCALE`` environment variable (a float,
default 1.0) to shrink or grow workload sizes uniformly.  Point
``REPRO_BENCH_CACHE`` elsewhere (or at ``off``) to redirect or disable
the persistent cache.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Tuple

from repro.config import DistillConfig, MsspConfig, TimingConfig
from repro.experiments import bench
from repro.experiments.harness import (
    EvaluationRow,
    PreparedWorkload,
)
from repro.mssp.engine import MsspResult
from repro.stats import Table
from repro.timing import simulate_mssp
from repro.workloads import REPRESENTATIVE, WORKLOADS, get_workload

OUT_DIR = Path(__file__).parent / "out"

#: All suite workloads in registry order.
SUITE = tuple(WORKLOADS)

#: The sweep subset (see repro.workloads.registry.REPRESENTATIVE).
SWEEP_SUITE = REPRESENTATIVE


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def bench_size(name: str, scale: Optional[float] = None) -> int:
    """Workload size used by the benchmarks (scaled default)."""
    scale = bench_scale() if scale is None else scale
    return max(4, int(get_workload(name).default_size * scale))


#: In-process memo layered over the persistent cache (avoids repeated
#: unpickling within one benchmark process).
_MEMO: Dict[Tuple, object] = {}

#: Set by the most recent prepared()/functional_run() call: True when the
#: artifact came from a cache (memo or disk) rather than a fresh run.
LAST_CACHE_HIT: bool = False


def prepared(
    name: str,
    size: Optional[int] = None,
    distill_config: Optional[DistillConfig] = None,
) -> PreparedWorkload:
    """Cached profile+distill for one workload configuration.

    Persistently cached: hits survive across processes via
    ``benchmarks/cache/`` (see :mod:`repro.experiments.bench`).
    """
    global LAST_CACHE_HIT
    resolved = size if size is not None else bench_size(name)
    memo_key = ("prepared", name, resolved, distill_config)
    if memo_key in _MEMO:
        LAST_CACHE_HIT = True
        return _MEMO[memo_key]
    ready, hit = bench.cached_prepare(
        name, size=resolved, distill_config=distill_config
    )
    LAST_CACHE_HIT = hit
    _MEMO[memo_key] = ready
    return ready


def functional_run(
    name: str,
    size: Optional[int] = None,
    distill_config: Optional[DistillConfig] = None,
    mssp_config: Optional[MsspConfig] = None,
) -> Tuple[PreparedWorkload, MsspResult]:
    """Cached equivalence-checked MSSP run (the expensive stage)."""
    global LAST_CACHE_HIT
    resolved = size if size is not None else bench_size(name)
    memo_key = ("functional", name, resolved, distill_config, mssp_config)
    if memo_key in _MEMO:
        LAST_CACHE_HIT = True
        return _MEMO[memo_key]
    ready, result, hit = bench.cached_functional_run(
        name, size=resolved, distill_config=distill_config,
        mssp_config=mssp_config,
    )
    LAST_CACHE_HIT = hit
    _MEMO[memo_key] = (ready, result)
    return ready, result


def timed_row(
    name: str,
    timing_config: Optional[TimingConfig] = None,
    size: Optional[int] = None,
    distill_config: Optional[DistillConfig] = None,
    mssp_config: Optional[MsspConfig] = None,
) -> EvaluationRow:
    """One workload under one machine configuration (cheap replays)."""
    ready, result = functional_run(name, size, distill_config, mssp_config)
    breakdown = simulate_mssp(result, timing_config)
    return EvaluationRow(
        name=name, seq_instrs=ready.seq_instrs, mssp=result,
        breakdown=breakdown, seq_loads=ready.seq_loads,
    )


def report(experiment: str, table: Table) -> str:
    """Print the table and persist it under ``benchmarks/out/``."""
    rendered = table.render()
    print()
    print(rendered)
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    (OUT_DIR / f"{experiment}.txt").write_text(rendered + "\n")
    return rendered


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
